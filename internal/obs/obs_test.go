package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	sp := tr.Phase("anything")
	if sp != nil {
		t.Fatal("nil trace must hand out nil spans")
	}
	// Every span method must be a no-op on nil.
	sp.Set("x", 1)
	sp.SetInt("y", 2)
	sp.Add("x", 3)
	sp.Label("status", "ok")
	sp.Child("nested").End()
	sp.End()
	if d := sp.Elapsed(); d != 0 {
		t.Fatalf("nil span elapsed = %v", d)
	}
	if v, ok := sp.Counter("x"); ok || v != 0 {
		t.Fatalf("nil span counter = %v, %v", v, ok)
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil trace must snapshot to nil")
	}
	if tr.Name() != "" || tr.Wall() != 0 {
		t.Fatal("nil trace accessors must return zero values")
	}
	tr.Finish()
	var buf bytes.Buffer
	if err := tr.WriteTable(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteTable wrote %q, err %v", buf.String(), err)
	}
}

func TestSpanHierarchyAndCounters(t *testing.T) {
	tr := New("demo")
	p1 := tr.Phase("parse")
	p1.SetInt("units", 9)
	p1.End()
	p2 := tr.Phase("layout")
	c := p2.Child("milp round 1")
	c.Add("nodes", 10)
	c.Add("nodes", 5)
	c.Label("status", "optimal")
	c.End()
	p2.End()
	tr.Finish()

	doc := tr.Snapshot()
	if doc.Schema != SchemaVersion {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if doc.Name != "demo" {
		t.Fatalf("name = %q", doc.Name)
	}
	if len(doc.Spans) != 2 || doc.Spans[0].Name != "parse" || doc.Spans[1].Name != "layout" {
		t.Fatalf("top-level spans = %+v", doc.Spans)
	}
	if doc.Spans[0].Counters["units"] != 9 {
		t.Fatalf("parse counters = %v", doc.Spans[0].Counters)
	}
	inner := doc.Spans[1].Spans
	if len(inner) != 1 || inner[0].Name != "milp round 1" {
		t.Fatalf("nested spans = %+v", inner)
	}
	if inner[0].Counters["nodes"] != 15 {
		t.Fatalf("Add should accumulate: %v", inner[0].Counters)
	}
	if inner[0].Labels["status"] != "optimal" {
		t.Fatalf("labels = %v", inner[0].Labels)
	}
}

func TestElapsedSealedByEnd(t *testing.T) {
	tr := New("t")
	sp := tr.Phase("p")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	d := sp.Elapsed()
	if d < time.Millisecond {
		t.Fatalf("elapsed = %v, want >= 1ms", d)
	}
	time.Sleep(2 * time.Millisecond)
	if sp.Elapsed() != d {
		t.Fatal("End must seal the interval")
	}
}

// TestTraceJSONGoldenRoundTrip pins the documented schema: a literal
// trace document (the shape docs/metrics.md specifies) unmarshals into
// TraceJSON without loss and re-marshals to the identical canonical form.
func TestTraceJSONGoldenRoundTrip(t *testing.T) {
	const golden = `{
  "schema": "columbas-trace/v1",
  "name": "chip9",
  "wall_ms": 412.53,
  "spans": [
    {
      "name": "parse",
      "wall_ms": 0.21,
      "counters": {
        "units": 9
      }
    },
    {
      "name": "layout",
      "wall_ms": 398.77,
      "counters": {
        "milp_lp_solves": 837,
        "milp_nodes": 512,
        "milp_nodes_pruned": 123
      },
      "labels": {
        "status": "optimal"
      },
      "spans": [
        {
          "name": "milp round 1",
          "wall_ms": 395.01
        }
      ]
    }
  ]
}`
	var doc TraceJSON
	if err := json.Unmarshal([]byte(golden), &doc); err != nil {
		t.Fatalf("golden document does not match schema struct: %v", err)
	}
	if doc.Schema != SchemaVersion {
		t.Fatalf("schema = %q, want %q", doc.Schema, SchemaVersion)
	}
	if doc.Spans[1].Counters["milp_nodes"] != 512 {
		t.Fatalf("counters lost in round trip: %+v", doc.Spans[1].Counters)
	}
	out, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != golden {
		t.Fatalf("round trip not lossless:\n--- golden ---\n%s\n--- re-marshalled ---\n%s", golden, out)
	}
}

// TestLiveTraceRoundTrips checks the writer side: a trace produced by the
// API marshals to a document that unmarshals back into the schema struct
// equal to the original snapshot.
func TestLiveTraceRoundTrips(t *testing.T) {
	tr := New("rt")
	sp := tr.Phase("solve")
	sp.SetInt("nodes", 42)
	sp.Set("gap", 0.015)
	sp.Label("status", "feasible")
	sp.Child("round 1").End()
	sp.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got TraceJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("WriteJSON output does not match schema: %v", err)
	}
	want := tr.Snapshot()
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(&got)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip drifted:\n%s\n%s", a, b)
	}
}

func TestWriteTable(t *testing.T) {
	tr := New("tbl")
	sp := tr.Phase("layout")
	sp.SetInt("nodes", 7)
	sp.Label("status", "optimal")
	sp.Child("milp round 1").End()
	sp.End()
	tr.Finish()
	var buf bytes.Buffer
	if err := tr.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"phase", "layout", "  milp round 1", "status=optimal", "nodes=7", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{250 * time.Microsecond, "250µs"},
		{3500 * time.Microsecond, "3.50ms"},
		{1500 * time.Millisecond, "1.500s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestFormatCounter(t *testing.T) {
	if got := formatCounter(512); got != "512" {
		t.Errorf("formatCounter(512) = %q", got)
	}
	if got := formatCounter(0.015); got != "0.015" {
		t.Errorf("formatCounter(0.015) = %q", got)
	}
}
