package obs

import (
	"sort"
	"sync"
	"time"
)

// Trace records one run of the synthesis pipeline as a tree of phase
// spans. A nil *Trace is a valid, fully disabled trace: every method is a
// no-op and returns a nil *Span whose methods are in turn no-ops, so
// instrumented code needs no enabled-checks and pays only a nil test on
// the disabled path.
type Trace struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	spans    []*Span
	observer Observer
}

// Span is one phase (or sub-phase) of a traced run: a name, a wall-clock
// interval, ordered child spans and a set of named counters and labels.
type Span struct {
	tr       *Trace
	name     string
	path     string // slash-joined ancestry, e.g. "layout/milp round 1"
	start    time.Time
	end      time.Time
	counters map[string]float64
	labels   map[string]string
	children []*Span
}

// New starts a trace for a pipeline run identified by name (typically the
// design name).
func New(name string) *Trace {
	return &Trace{name: name, start: time.Now()}
}

// SetName renames the trace. Commands that start tracing before they know
// the design name (the name only exists after parsing) rename here.
func (t *Trace) SetName(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.name = name
	t.mu.Unlock()
}

// Name returns the trace's run identifier ("" on a nil trace).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Phase opens a new top-level span. The caller must End it; phases are
// expected to be sequential, but opening spans from multiple goroutines is
// safe.
func (t *Trace) Phase(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, path: name, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	obs := t.observer
	t.mu.Unlock()
	if obs != nil {
		obs(Event{Kind: EventSpanStart, Path: s.path})
	}
	return s
}

// Finish seals the trace's total wall time. Optional: an unfinished trace
// reports wall time up to the moment it is rendered.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	sealed := false
	if t.end.IsZero() {
		t.end = time.Now()
		sealed = true
	}
	wall := t.wallLocked()
	obs := t.observer
	t.mu.Unlock()
	if sealed && obs != nil {
		obs(Event{Kind: EventTraceFinish, WallMS: ms(wall)})
	}
}

// Wall returns the trace's total wall-clock time so far (0 on nil).
func (t *Trace) Wall() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wallLocked()
}

func (t *Trace) wallLocked() time.Duration {
	if t.end.IsZero() {
		return time.Since(t.start)
	}
	return t.end.Sub(t.start)
}

// Child opens a nested span under s. Safe on a nil span (returns nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, path: s.path + "/" + name, start: time.Now()}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	obs := s.tr.observer
	s.tr.mu.Unlock()
	if obs != nil {
		obs(Event{Kind: EventSpanStart, Path: c.path})
	}
	return c
}

// End seals the span's wall-clock interval. Ending twice keeps the first
// end time (and emits no second event).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	sealed := false
	if s.end.IsZero() {
		s.end = time.Now()
		sealed = true
	}
	obs := s.tr.observer
	var snap SpanJSON
	if sealed && obs != nil {
		snap = s.snapshotLocked()
	}
	s.tr.mu.Unlock()
	if sealed && obs != nil {
		// The snapshot is flattened to this span's own data: child spans
		// emit their own events.
		snap.Spans = nil
		obs(Event{Kind: EventSpanEnd, Path: s.path, WallMS: snap.WallMS, Span: &snap})
	}
}

// Elapsed returns the span's wall time: up to now while open, the sealed
// interval after End.
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Set records counter name = v on the span, replacing any prior value.
func (s *Span) Set(name string, v float64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]float64)
	}
	s.counters[name] = v
	s.tr.mu.Unlock()
}

// SetInt records an integer-valued counter.
func (s *Span) SetInt(name string, v int64) { s.Set(name, float64(v)) }

// Add increments counter name by v, creating it at v when absent.
func (s *Span) Add(name string, v float64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]float64)
	}
	s.counters[name] += v
	s.tr.mu.Unlock()
}

// Label attaches a string-valued annotation (e.g. a solver status) to the
// span.
func (s *Span) Label(name, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.labels == nil {
		s.labels = make(map[string]string)
	}
	s.labels[name] = value
	s.tr.mu.Unlock()
}

// Counter returns the span's counter value and whether it is set.
func (s *Span) Counter(name string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	v, ok := s.counters[name]
	return v, ok
}

// counterKeys returns the span's counter names sorted; callers hold tr.mu.
func (s *Span) counterKeysLocked() []string {
	keys := make([]string, 0, len(s.counters))
	for k := range s.counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (s *Span) labelKeysLocked() []string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
