package obs

// EventKind classifies a live trace Event.
type EventKind int

// Event kinds, in the order a span emits them.
const (
	// EventSpanStart fires when a phase (or sub-phase) span opens.
	EventSpanStart EventKind = iota
	// EventSpanEnd fires when a span is sealed by End; the event carries
	// the span's snapshot (wall time, counters, labels).
	EventSpanEnd
	// EventTraceFinish fires when the trace itself is sealed by Finish.
	EventTraceFinish
)

// String names the kind for wire documents ("span-start", "span-end",
// "finish").
func (k EventKind) String() string {
	switch k {
	case EventSpanStart:
		return "span-start"
	case EventSpanEnd:
		return "span-end"
	case EventTraceFinish:
		return "finish"
	}
	return "unknown"
}

// Event is one live notification from an observed Trace: a span opened,
// a span sealed, or the whole trace finished. Events let a consumer —
// columbasd's /v2 SSE progress streams are the canonical one — follow a
// synthesis run phase by phase while it executes, instead of reading
// the trace document after the fact.
type Event struct {
	// Kind is the event class.
	Kind EventKind
	// Path is the slash-joined span ancestry ("layout", "layout/milp
	// round 1"). Empty for EventTraceFinish.
	Path string
	// WallMS is the sealed wall time in milliseconds: the span's on
	// EventSpanEnd, the trace's on EventTraceFinish, 0 on span start.
	WallMS float64
	// Span is the ended span's snapshot (counters and labels included,
	// child spans stripped — children emit their own events). Only set
	// on EventSpanEnd.
	Span *SpanJSON
}

// Observer receives live trace events. It is called synchronously from
// the instrumented goroutine with no trace lock held, so it may call
// back into the trace but must return promptly — a blocking observer
// stalls the pipeline it observes.
type Observer func(Event)

// Observe registers fn as the trace's single live observer, replacing
// any prior one (nil unregisters). Spans opened before Observe emit no
// retroactive events; consumers that need history replay it from their
// own buffer. No-op on a nil trace.
func (t *Trace) Observe(fn Observer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.observer = fn
	t.mu.Unlock()
}
