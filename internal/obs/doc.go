// Package obs is the zero-dependency observability layer of the Columba S
// reproduction: hierarchical phase tracing, per-phase counters, and pprof
// profile helpers, shared by the whole synthesis pipeline and all four
// command-line tools.
//
// The paper (Section 4, Table 1) reports synthesis cost as a single
// "program run time" number; this package breaks that number down so the
// scalability claim is inspectable — where does a solve spend its time
// (planarize, layout MILP, validation, multiplexer synthesis), and did
// the branch-and-bound worker pool actually prune.
//
// Key types:
//
//   - Trace — one run as a tree of phase spans; New starts one,
//     Trace.Phase / Span.Child open spans, Span.Set/Add/Label attach
//     counters. A nil *Trace disables everything at the cost of a nil
//     check, so the pipeline is instrumented unconditionally.
//   - TraceJSON / SpanJSON — the machine-readable snapshot schema
//     (SchemaVersion "columbas-trace/v1", documented in docs/metrics.md)
//     written by `columbas -trace-json` and embedded in benchtab -json
//     reports.
//   - Trace.WriteTable — the human per-phase table behind
//     `columbas -stats`.
//   - StartCPUProfile / WriteHeapProfile — the -pprof-cpu / -pprof-mem
//     flag implementations.
//
// The solver-side counters this package surfaces (nodes, prunes, LP
// solves, pivots, worker utilization) are collected by internal/milp as a
// SearchStats value; obs only renders them.
package obs
