package obs

import (
	"sync"
	"testing"
)

// TestObserveEventStream walks a small trace and checks the observer
// sees every span open and close, in order, with paths, counters and a
// final finish event.
func TestObserveEventStream(t *testing.T) {
	tr := New("run")
	var mu sync.Mutex
	var got []Event
	tr.Observe(func(ev Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})

	sp := tr.Phase("layout")
	child := sp.Child("milp round 1")
	child.SetInt("nodes", 7)
	child.End()
	child.End() // double End must not emit a second event
	sp.Label("status", "optimal")
	sp.End()
	tr.Finish()
	tr.Finish() // idempotent

	want := []struct {
		kind EventKind
		path string
	}{
		{EventSpanStart, "layout"},
		{EventSpanStart, "layout/milp round 1"},
		{EventSpanEnd, "layout/milp round 1"},
		{EventSpanEnd, "layout"},
		{EventTraceFinish, ""},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Kind != w.kind || got[i].Path != w.path {
			t.Fatalf("event %d = {%v %q}, want {%v %q}", i, got[i].Kind, got[i].Path, w.kind, w.path)
		}
	}
	// Span-end events carry the span's own snapshot, children stripped.
	roundEnd := got[2]
	if roundEnd.Span == nil || roundEnd.Span.Counters["nodes"] != 7 {
		t.Fatalf("round end snapshot = %+v, want nodes=7", roundEnd.Span)
	}
	layoutEnd := got[3]
	if layoutEnd.Span == nil || layoutEnd.Span.Labels["status"] != "optimal" {
		t.Fatalf("layout end snapshot = %+v, want status label", layoutEnd.Span)
	}
	if layoutEnd.Span.Spans != nil {
		t.Fatal("span-end snapshot must not carry child spans")
	}
}

// TestObserveNilSafe: Observe on a nil trace is a no-op, and a trace
// without an observer emits nothing (i.e. instrumentation cost is one
// nil check).
func TestObserveNilSafe(t *testing.T) {
	var nilTr *Trace
	nilTr.Observe(func(Event) { t.Fatal("observer on nil trace fired") })
	nilTr.Phase("p").End()

	tr := New("quiet")
	sp := tr.Phase("p")
	sp.End()
	tr.Observe(nil) // unregister is legal
	tr.Finish()
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EventSpanStart:   "span-start",
		EventSpanEnd:     "span-end",
		EventTraceFinish: "finish",
		EventKind(42):    "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
