package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile into path and returns the function
// that stops the profile and closes the file. The columbas and benchtab
// -pprof-cpu flags are thin wrappers over this.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile garbage-collects (so the profile reflects live memory,
// per the runtime/pprof guidance) and writes the heap profile to path.
// The -pprof-mem flags call this after the measured work completes.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: write heap profile: %w", err)
	}
	return nil
}
