module columbas

go 1.22
