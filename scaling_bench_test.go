// The sparse-kernel scaling curve (make bench-scaling): one full
// synthesis per ChIP size and LP basis engine, from chip9 up to the
// chip256-class sizes the dense kernel cannot reach comfortably. Each
// benchmark reports the layout model size and the merged solver counters
// (pivots, fill-in, peak basis nonzeros, dense fallbacks) alongside
// ns/op, so one `make bench-scaling` run yields the whole EXPERIMENTS.md
// scaling table. The dense column is capped at chip128 — beyond that the
// m×m inverse is the point being made — while the sparse column extends
// through chip256 and a generated (internal/gen.Scale) chip128-class
// netlist.
package columbas

import (
	"testing"
	"time"

	"columbas/internal/cases"
	"columbas/internal/core"
	"columbas/internal/gen"
	"columbas/internal/lp"
	"columbas/internal/netlist"
)

// benchScalingKernel synthesizes the netlist end to end (DRC included)
// under the given LP kernel and reports the scaling-curve metrics.
func benchScalingKernel(b *testing.B, n *netlist.Netlist, k lp.Kernel) {
	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = 180 * time.Second
	opt.Layout.StallLimit = 60
	opt.Layout.Kernel = k
	opt.RunDRC = true
	var res *core.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.Synthesize(n, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.DRC != nil && !res.DRC.Clean() {
		b.Fatalf("%s: design not DRC-clean under %v kernel", n.Name, k)
	}
	st := res.Plan.Stats.Search
	b.ReportMetric(float64(res.Plan.Stats.Rows), "rows")
	b.ReportMetric(float64(st.SimplexPivots), "pivots")
	b.ReportMetric(float64(st.FillIn), "fill_in")
	b.ReportMetric(float64(st.BasisNonzeros), "basis_nnz")
	b.ReportMetric(float64(st.SparseRefactorizations), "sparse_refacs")
	b.ReportMetric(float64(st.DenseFallbacks), "dense_fallbacks")
}

func scalingCase(b *testing.B, id string) *netlist.Netlist {
	b.Helper()
	c, err := cases.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	n, err := c.Netlist()
	if err != nil {
		b.Fatal(err)
	}
	return n
}

func BenchmarkScalingKernel_ChIP9_Dense(b *testing.B) {
	benchScalingKernel(b, scalingCase(b, "chip9"), lp.KernelDense)
}
func BenchmarkScalingKernel_ChIP9_Sparse(b *testing.B) {
	benchScalingKernel(b, scalingCase(b, "chip9"), lp.KernelSparse)
}
func BenchmarkScalingKernel_ChIP16_Dense(b *testing.B) {
	benchScalingKernel(b, scalingCase(b, "chip16"), lp.KernelDense)
}
func BenchmarkScalingKernel_ChIP16_Sparse(b *testing.B) {
	benchScalingKernel(b, scalingCase(b, "chip16"), lp.KernelSparse)
}
func BenchmarkScalingKernel_ChIP64_Dense(b *testing.B) {
	benchScalingKernel(b, scalingCase(b, "chip64"), lp.KernelDense)
}
func BenchmarkScalingKernel_ChIP64_Sparse(b *testing.B) {
	benchScalingKernel(b, scalingCase(b, "chip64"), lp.KernelSparse)
}
func BenchmarkScalingKernel_ChIP128_Dense(b *testing.B) {
	benchScalingKernel(b, scalingCase(b, "chip128"), lp.KernelDense)
}
func BenchmarkScalingKernel_ChIP128_Sparse(b *testing.B) {
	benchScalingKernel(b, scalingCase(b, "chip128"), lp.KernelSparse)
}
func BenchmarkScalingKernel_ChIP256_Sparse(b *testing.B) {
	benchScalingKernel(b, scalingCase(b, "chip256"), lp.KernelSparse)
}

// Gen128 is the generated (not hand-written) chip128-class point:
// gen.Scale(128, 8), seed 1 — 257 units in parallel groups of at most 8
// same-option lanes. It checks the sparse kernel's scaling story holds
// off the curated ChIP shapes too.
func BenchmarkScalingKernel_Gen128_Sparse(b *testing.B) {
	benchScalingKernel(b, gen.Scale(128, 8).Generate(1), lp.KernelSparse)
}
