// System-level integration suite: every Table 1 case, both multiplexer
// variants, synthesized end-to-end and checked against the invariants the
// paper's design rules promise. This is the acceptance test of the whole
// reproduction.
package columbas

import (
	"fmt"
	"testing"
	"time"

	"columbas/internal/cases"
	"columbas/internal/core"
	"columbas/internal/drc"
	"columbas/internal/mux"
	"columbas/internal/sim"
)

func systemOpts(big bool) core.Options {
	o := core.DefaultOptions()
	o.Layout.TimeLimit = 10 * time.Second
	o.Layout.StallLimit = 40
	o.Layout.Gap = 0.1
	if big {
		o.Layout.TimeLimit = 60 * time.Second
	}
	return o
}

func TestSystemCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("system corpus skipped in -short mode")
	}
	for _, c := range cases.Table1() {
		for _, muxes := range []int{1, 2} {
			c, muxes := c, muxes
			t.Run(fmt.Sprintf("%s_%dmux", c.ID, muxes), func(t *testing.T) {
				n, err := c.WithMuxes(muxes).Netlist()
				if err != nil {
					t.Fatal(err)
				}
				res, err := core.Synthesize(n, systemOpts(c.Units > 100))
				if err != nil {
					t.Fatal(err)
				}
				d := res.Design
				m := res.Metrics()

				// 1. DRC clean.
				if !res.DRC.Clean() {
					for _, v := range res.DRC.Violations {
						t.Errorf("violation: %v", v)
					}
					t.Fatal("design not DRC-clean")
				}
				// 2. The inlet formula holds per multiplexer.
				want := 0
				if d.MuxBottom != nil {
					want += mux.InletsFor(d.MuxBottom.N)
				}
				if d.MuxTop != nil {
					want += mux.InletsFor(d.MuxTop.N)
				}
				if m.CtrlInlets != want {
					t.Errorf("CtrlInlets = %d, formula says %d", m.CtrlInlets, want)
				}
				// 3. Every control channel is addressable and isolated.
				ctl := sim.NewController(d)
				for _, ch := range d.Ctrl {
					if err := ctl.Set(ch.Name, true); err != nil {
						t.Fatalf("channel %s: %v", ch.Name, err)
					}
				}
				// 4. Unit count and fluid ports survived the flow.
				if m.Units != c.Units {
					t.Errorf("units = %d, want %d", m.Units, c.Units)
				}
				in, out := n.Terminals()
				if len(d.Inlets) == 0 || len(d.Inlets) > (len(in)+len(out))*c.Units {
					t.Errorf("fluid ports = %d (terminals %d/%d)", len(d.Inlets), len(in), len(out))
				}
				// 5. An independent re-check agrees with the stored report.
				if rep := drc.Check(d); rep.Clean() != res.DRC.Clean() {
					t.Error("DRC report mismatch on re-check")
				}
			})
		}
	}
}

// The two MUX variants of one design control the same channel set, split
// differently: total channels must match and the 1-MUX inlet count never
// exceeds the 2-MUX one.
func TestSystemMuxVariantConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	for _, id := range []string{"nap6", "chip9", "mrna8"} {
		c, err := cases.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		var channels [3]int
		var inlets [3]int
		for _, muxes := range []int{1, 2} {
			n, err := c.WithMuxes(muxes).Netlist()
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Synthesize(n, systemOpts(false))
			if err != nil {
				t.Fatalf("%s %d-mux: %v", id, muxes, err)
			}
			total := 0
			if res.Design.MuxBottom != nil {
				total += res.Design.MuxBottom.N
			}
			if res.Design.MuxTop != nil {
				total += res.Design.MuxTop.N
			}
			channels[muxes] = total
			inlets[muxes] = res.Metrics().CtrlInlets
		}
		if channels[1] != channels[2] {
			t.Errorf("%s: channel census differs: %d vs %d", id, channels[1], channels[2])
		}
		if inlets[1] > inlets[2] {
			t.Errorf("%s: 1-MUX inlets %d exceed 2-MUX %d", id, inlets[1], inlets[2])
		}
	}
}

// Determinism: the same input synthesizes to the same metrics twice.
func TestSystemDeterminism(t *testing.T) {
	c, err := cases.Get("mrna8")
	if err != nil {
		t.Fatal(err)
	}
	var got [2]core.Metrics
	for i := 0; i < 2; i++ {
		n, err := c.Netlist()
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Synthesize(n, systemOpts(false))
		if err != nil {
			t.Fatal(err)
		}
		got[i] = res.Metrics()
	}
	if got[0].WidthMM != got[1].WidthMM || got[0].HeightMM != got[1].HeightMM ||
		got[0].FlowMM != got[1].FlowMM || got[0].CtrlInlets != got[1].CtrlInlets {
		t.Fatalf("nondeterministic synthesis:\n%+v\n%+v", got[0], got[1])
	}
}
