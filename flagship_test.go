// Flagship end-to-end scenario: the complete platform story on one large
// application — assay description → HLS compile → physical synthesis →
// DRC → multiplexer-driven protocol execution → valve fault analysis.
// This is the workflow a downstream user of the library would run.
package columbas

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"columbas/internal/core"
	"columbas/internal/hls"
	"columbas/internal/sim"
)

func TestFlagshipAssayPlatform(t *testing.T) {
	if testing.Short() {
		t.Skip("flagship scenario skipped in -short mode")
	}
	// An 8-lane immunoprecipitation assay with shared control, written in
	// the textual assay language.
	assay, err := hls.ParseString(`
assay flagship
muxes 2
lanes 8 shared
mix bind cycles=4 fluid:chromatin fluid:beads
wash bind
incubate react bind
collect react product
`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := assay.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if n.NumUnits() != 16 {
		t.Fatalf("units = %d, want 16", n.NumUnits())
	}

	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = 30 * time.Second
	res, err := core.Synthesize(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DRC.Clean() {
		for _, v := range res.DRC.Violations {
			t.Errorf("violation: %v", v)
		}
		t.Fatal("flagship design not DRC-clean")
	}
	d := res.Design

	// Shared control: the 8 lanes need only one lane's worth of channels
	// plus the planarization switches.
	m := res.Metrics()
	if m.CtrlInlets <= 0 || m.CtrlInlets > 40 {
		t.Fatalf("control inlets = %d", m.CtrlInlets)
	}

	// Execute the assay protocol; lanes share channels, so one schedule
	// drives all eight lanes.
	ctl := sim.NewController(d)
	p, err := assay.Schedule(0)
	if err != nil {
		t.Fatal(err)
	}
	dur, err := p.Execute(ctl)
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 || dur > sim.HoldLimit {
		t.Fatalf("protocol duration = %v", dur)
	}
	if len(ctl.HoldViolations()) != 0 {
		t.Fatalf("hold violations: %v", ctl.HoldViolations())
	}

	// Reconfigure on the same chip: a deep-wash variant.
	deep, err := assay.Schedule(3) // any lane resolves to the shared channels
	if err != nil {
		t.Fatal(err)
	}
	if _, err := deep.Execute(sim.NewController(d)); err != nil {
		t.Fatal(err)
	}

	// Structural fault coverage (a capped vector subset keeps the test
	// economical; cmd/columbafault runs the full set).
	fctl := sim.NewController(d)
	vectors := sim.DefaultVectors(fctl)
	if len(vectors) > 48 {
		vectors = vectors[:48]
	}
	rep, err := fctl.RunFaultAnalysis(vectors)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total == 0 || rep.Coverage() <= 0 {
		t.Fatalf("fault report: %+v", rep)
	}

	// Every fabrication/documentation artifact renders.
	for name, write := range map[string]func(*bytes.Buffer) error{
		"scr":  func(b *bytes.Buffer) error { return res.WriteSCR(b) },
		"dxf":  func(b *bytes.Buffer) error { return res.WriteDXF(b) },
		"svg":  func(b *bytes.Buffer) error { return res.WriteSVG(b) },
		"json": func(b *bytes.Buffer) error { return res.WriteJSON(b) },
		"md":   func(b *bytes.Buffer) error { return res.WriteReport(b) },
		"plan": func(b *bytes.Buffer) error { return res.WritePlanSVG(b) },
		"txt":  func(b *bytes.Buffer) error { return res.WriteASCII(b, 80) },
	} {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s export: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s export empty", name)
		}
	}

	// The datasheet names the shared channels once, not per lane.
	var md bytes.Buffer
	if err := res.WriteReport(&md); err != nil {
		t.Fatal(err)
	}
	if c := strings.Count(md.String(), "bind_l1.pump1"); c == 0 {
		t.Error("datasheet missing the shared pump channel")
	}
}
