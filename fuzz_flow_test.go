// Whole-flow randomised stress test: generate random structurally-valid
// netlists across the feature space (unit types, mixer options, chains,
// fan-in nets, parallel groups, 1/2 multiplexers), run the complete
// synthesis flow on each, and require a DRC-clean design. This is the
// repository's broadest property test — any geometric or model regression
// anywhere in the pipeline surfaces here.
package columbas

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"columbas/internal/core"
	"columbas/internal/netlist"
)

// randomNetlist builds a valid netlist with up to maxChains independent
// chains, optional fan-in through a shared net, and optional parallel
// groups over identical chains.
func randomNetlist(rng *rand.Rand, seed int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "design fuzz%d\n", seed)
	muxes := 1 + rng.Intn(2)
	fmt.Fprintf(&b, "muxes %d\n", muxes)

	chains := 1 + rng.Intn(5)
	chainLen := 1 + rng.Intn(4)
	mixOpt := []string{"", " sieve", " celltrap"}[rng.Intn(3)]
	shareNet := rng.Intn(2) == 0 && chains > 1
	parallel := rng.Intn(2) == 0 && chains > 1
	inletNet := rng.Intn(3) == 0 && shareNet // extra fluid into the shared net

	var lastUnits []string
	for c := 0; c < chains; c++ {
		var prev string
		for k := 0; k < chainLen; k++ {
			name := fmt.Sprintf("u%d_%d", c, k)
			if k == 0 {
				fmt.Fprintf(&b, "unit %s mixer%s\n", name, mixOpt)
			} else {
				fmt.Fprintf(&b, "unit %s chamber\n", name)
			}
			if k == 0 {
				fmt.Fprintf(&b, "connect in:f%d %s\n", c, name)
			} else {
				fmt.Fprintf(&b, "connect %s %s\n", prev, name)
			}
			prev = name
		}
		lastUnits = append(lastUnits, prev)
	}
	if shareNet {
		b.WriteString("net")
		for _, u := range lastUnits {
			b.WriteString(" " + u)
		}
		if inletNet {
			b.WriteString(" in:buffer")
		}
		b.WriteString(" out:waste\n")
	} else {
		for c, u := range lastUnits {
			fmt.Fprintf(&b, "connect %s out:w%d\n", u, c)
		}
	}
	if parallel {
		b.WriteString("parallel")
		for c := 0; c < chains; c++ {
			for k := 0; k < chainLen; k++ {
				fmt.Fprintf(&b, " u%d_%d", c, k)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func TestFuzzWholeFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz flow skipped in -short mode")
	}
	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = 3 * time.Second
	opt.Layout.StallLimit = 20
	opt.Layout.Gap = 0.2

	for seed := int64(0); seed < 48; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			src := randomNetlist(rng, seed)
			n, err := netlist.ParseString(src)
			if err != nil {
				t.Fatalf("generated invalid netlist:\n%s\n%v", src, err)
			}
			res, err := core.Synthesize(n, opt)
			if err != nil {
				t.Fatalf("flow failed:\n%s\n%v", src, err)
			}
			if res.DRC == nil || !res.DRC.Clean() {
				for _, v := range res.DRC.Violations {
					t.Errorf("violation: %v", v)
				}
				t.Fatalf("DRC failures on:\n%s", src)
			}
			m := res.Metrics()
			if m.WidthMM <= 0 || m.HeightMM <= 0 || m.CtrlInlets <= 0 {
				t.Fatalf("degenerate metrics %+v on:\n%s", m, src)
			}
		})
	}
}
