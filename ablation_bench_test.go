// Ablation benchmarks for the design choices DESIGN.md calls out: each
// pair measures the Columba S layout generation with one mechanism
// disabled, quantifying what that mechanism buys. Run with:
//
//	go test -bench=Ablation -benchmem
package columbas

import (
	"testing"
	"time"

	"columbas/internal/cases"
	"columbas/internal/layout"
	"columbas/internal/netlist"
	"columbas/internal/planar"
)

func ablationPlanar(b testing.TB, id string) *planar.Result {
	b.Helper()
	c, err := cases.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	n, err := c.Netlist()
	if err != nil {
		b.Fatal(err)
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		b.Fatal(err)
	}
	return pr
}

func ablationOpts() layout.Options {
	o := layout.DefaultOptions()
	o.TimeLimit = 20 * time.Second
	o.StallLimit = 40
	o.Gap = 0.05
	return o
}

func runAblation(b *testing.B, pr *planar.Result, opt layout.Options) {
	b.Helper()
	var plan *layout.Plan
	var err error
	for i := 0; i < b.N; i++ {
		plan, err = layout.Generate(pr, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(plan.XMax*plan.YMax/1e6, "area_mm2")
	b.ReportMetric(float64(plan.Stats.Nodes), "nodes")
	b.ReportMetric(float64(plan.Stats.Binaries), "binaries")
	if plan.Stats.SeedOnly {
		b.ReportMetric(1, "seed_fallback")
	}
}

// ── Lazy non-overlap separation vs. the full disjunction model ───────
// Lazy separation keeps the MILP to the pairs that matter; eager mode is
// the textbook formulation with every pairwise disjunction up front.

func BenchmarkAblation_Separation_Lazy(b *testing.B) {
	pr := ablationPlanar(b, "nap6")
	runAblation(b, pr, ablationOpts())
}

func BenchmarkAblation_Separation_Eager(b *testing.B) {
	pr := ablationPlanar(b, "nap6")
	o := ablationOpts()
	o.EagerSeparation = true
	runAblation(b, pr, o)
}

// ── Greedy staircase seed vs. cold-started branch and bound ──────────
// The seed gives the search an incumbent for free; without it, pruning
// starts only after branch and bound stumbles on a feasible placement.

func BenchmarkAblation_Seed_Warm(b *testing.B) {
	pr := ablationPlanar(b, "mrna8")
	runAblation(b, pr, ablationOpts())
}

func BenchmarkAblation_Seed_Cold(b *testing.B) {
	pr := ablationPlanar(b, "mrna8")
	o := ablationOpts()
	o.NoSeed = true
	runAblation(b, pr, o)
}

// ── Parallel-unit merging (Figure 6(a)) ──────────────────────────────
// The same 32-lane ChIP application with and without parallel groups:
// merging collapses 65 units into a handful of rectangles.

func BenchmarkAblation_Merging_On(b *testing.B) {
	c, err := cases.ChIPScale(32, 4)
	if err != nil {
		b.Fatal(err)
	}
	n, err := c.Netlist()
	if err != nil {
		b.Fatal(err)
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		b.Fatal(err)
	}
	runAblation(b, pr, ablationOpts())
}

func BenchmarkAblation_Merging_Off(b *testing.B) {
	c, err := cases.ChIPScale(32, 4)
	if err != nil {
		b.Fatal(err)
	}
	n, err := c.Netlist()
	if err != nil {
		b.Fatal(err)
	}
	n.Parallel = nil // drop the parallel groups: every unit stands alone
	if err := n.Validate(); err != nil {
		b.Fatal(err)
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		b.Fatal(err)
	}
	runAblation(b, pr, ablationOpts())
}

// ── MILP polish vs. raw greedy seed ──────────────────────────────────
// How much design quality the MILP adds over the constructive placement.

func BenchmarkAblation_MILP_On(b *testing.B) {
	pr := ablationPlanar(b, "chip9")
	runAblation(b, pr, ablationOpts())
}

func BenchmarkAblation_MILP_SeedOnly(b *testing.B) {
	pr := ablationPlanar(b, "chip9")
	o := ablationOpts()
	o.SkipMILP = true
	runAblation(b, pr, o)
}

// Ablation sanity: both separation modes reach overlap-free plans with
// comparable objective, and merging dramatically shrinks the model.
func TestAblationConsistency(t *testing.T) {
	pr := ablationPlanar(t, "nap6")
	o := ablationOpts()
	o.TimeLimit = 10 * time.Second
	lazy, err := layout.Generate(pr, o)
	if err != nil {
		t.Fatal(err)
	}
	o.EagerSeparation = true
	eager, err := layout.Generate(pr, o)
	if err != nil {
		t.Fatal(err)
	}
	// Eager carries at least as many binaries as lazy converged to.
	if eager.Stats.Binaries < lazy.Stats.Binaries {
		t.Fatalf("eager binaries %d < lazy %d", eager.Stats.Binaries, lazy.Stats.Binaries)
	}
	la := lazy.XMax * lazy.YMax
	ea := eager.XMax * eager.YMax
	if la <= 0 || ea <= 0 {
		t.Fatal("degenerate areas")
	}
}

// Merging shrinks the number of placeable rectangles by an order of
// magnitude on the parallel corpus (Figure 6(a)'s purpose).
func TestMergingReducesModel(t *testing.T) {
	c, err := cases.ChIPScale(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := c.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := planar.Planarize(nm)
	if err != nil {
		t.Fatal(err)
	}
	nu, err := c.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	nu.Parallel = nil
	unmerged, err := planar.Planarize(nu)
	if err != nil {
		t.Fatal(err)
	}
	o := ablationOpts()
	o.SkipMILP = true
	pm, err := layout.Generate(merged, o)
	if err != nil {
		t.Fatal(err)
	}
	pu, err := layout.Generate(unmerged, o)
	if err != nil {
		t.Fatal(err)
	}
	count := func(p *layout.Plan) int {
		n := 0
		for _, r := range p.Rects {
			if r.Placeable() {
				n++
			}
		}
		return n
	}
	cm, cu := count(pm), count(pu)
	if cm*4 > cu {
		t.Fatalf("merging should collapse placeables: %d merged vs %d unmerged", cm, cu)
	}
	_ = netlist.Mixer
}
