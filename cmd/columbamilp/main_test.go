package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

const corpusDir = "../../internal/mps/testdata"

// normalize re-marshals a result document with its volatile fields
// (wall time, node counts, full search stats) removed, leaving only the
// deterministic outcome: status, objective, bound, shape, incumbent.
func normalize(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("result is not JSON: %v\n%s", err, raw)
	}
	delete(doc, "runtime_ms")
	delete(doc, "nodes")
	delete(doc, "stats")
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestCLIGolden pins the full normalized stdout document for two corpus
// instances — one minimization, one OBJSENSE MAX — against checked-in
// goldens. Refresh with go test ./cmd/columbamilp -update.
func TestCLIGolden(t *testing.T) {
	for _, name := range []string{"knap3", "maxknap"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(
				[]string{"-workers", "1", filepath.Join(corpusDir, name+".mps")},
				strings.NewReader(""), &stdout, &stderr,
			)
			if code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
			}
			got := normalize(t, stdout.Bytes())
			golden := filepath.Join("testdata", name+".golden.json")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("golden: %v (run with -update to create)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("result drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// decodeEnvelope asserts stderr holds exactly one columbamilp-error/v1
// JSON line and returns it.
func decodeEnvelope(t *testing.T, stderr string) cliError {
	t.Helper()
	lines := strings.Split(strings.TrimRight(stderr, "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("stderr has %d lines, want exactly 1:\n%s", len(lines), stderr)
	}
	var e cliError
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("stderr is not a JSON envelope: %v\n%s", err, stderr)
	}
	if e.Schema != errorSchema {
		t.Fatalf("schema %q, want %q", e.Schema, errorSchema)
	}
	if e.Message == "" {
		t.Fatal("empty error message")
	}
	return e
}

// TestCLIParseError checks the failure contract on malformed input:
// nonzero exit, no stdout document, and a single stderr envelope with
// the parse position.
func TestCLIParseError(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.mps")
	if err := os.WriteFile(bad, []byte("ROWS\n N  OBJ\nCOLUMNS\n    X  NOPE  1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{bad}, strings.NewReader(""), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if stdout.Len() != 0 {
		t.Fatalf("unexpected stdout:\n%s", stdout.String())
	}
	e := decodeEnvelope(t, stderr.String())
	if e.Code != "mps_parse" {
		t.Fatalf("code %q, want mps_parse", e.Code)
	}
	if e.Line != 4 || e.Col != 8 {
		t.Fatalf("position %d:%d, want 4:8", e.Line, e.Col)
	}
}

// TestCLITimeout checks budget expiry: a 1ns budget cannot finish any
// search, so the CLI exits 2, still emits the result document (status
// limit or feasible), and reports the timeout envelope on stderr.
func TestCLITimeout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(
		[]string{"-workers", "1", "-timeout", "1ns", filepath.Join(corpusDir, "cover.mps")},
		strings.NewReader(""), &stdout, &stderr,
	)
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr:\n%s", code, stderr.String())
	}
	var doc struct {
		Schema string `json:"schema"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("stdout: %v\n%s", err, stdout.String())
	}
	if doc.Schema != resultSchema {
		t.Fatalf("schema %q, want %q", doc.Schema, resultSchema)
	}
	if doc.Status != "limit" && doc.Status != "feasible" {
		t.Fatalf("status %q, want limit or feasible", doc.Status)
	}
	e := decodeEnvelope(t, stderr.String())
	if e.Code != "timeout" {
		t.Fatalf("code %q, want timeout", e.Code)
	}
}

// TestCLIStdin solves an instance piped on stdin (no positional file).
func TestCLIStdin(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join(corpusDir, "knap3.mps"))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-workers", "1"}, bytes.NewReader(raw), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	var doc struct {
		Status    string   `json:"status"`
		Objective *float64 `json:"objective"`
		File      string   `json:"file"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "optimal" || doc.Objective == nil || *doc.Objective != -16 {
		t.Fatalf("got %+v, want optimal -16", doc)
	}
	if doc.File != "" {
		t.Fatalf("file %q, want empty for stdin", doc.File)
	}
}

// TestCLIBadFlag checks that invalid option values produce the envelope
// rather than a bare message.
func TestCLIBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(
		[]string{"-kernel", "quantum", filepath.Join(corpusDir, "knap3.mps")},
		strings.NewReader(""), &stdout, &stderr,
	)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if e := decodeEnvelope(t, stderr.String()); e.Code != "invalid_option" {
		t.Fatalf("code %q, want invalid_option", e.Code)
	}
}
