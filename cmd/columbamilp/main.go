// Command columbamilp solves an arbitrary MILP instance in MPS form with
// the columbas branch-and-bound engine — the same solver the layout
// pipeline runs, detached from microfluidics entirely.
//
// Usage:
//
//	columbamilp model.mps
//	columbamilp -kernel sparse -branching mostfrac -no-cuts model.mps
//	columbamilp -timeout 10s -workers 4 -stats model.mps
//	gen-emitted instances: see internal/gen.WriteMPS
//
// The instance is read from the positional file argument, or stdin when
// absent. The result goes to stdout as one columbamilp-result/v1 JSON
// document: status, objective (in the instance's stated sense),
// incumbent values by column name, and the solver's SearchStats
// (docs/metrics.md). -stats additionally prints the phase table to
// stderr; -trace-json writes the machine-readable trace.
//
// Exit status: 0 when the solve is conclusive (optimal, infeasible or
// unbounded), 1 on input/usage errors, 2 when the budget expired first
// (status feasible or limit). Errors are one columbamilp-error/v1 JSON
// line on stderr; parse errors carry the 1-based line/column.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"columbas/internal/lp"
	"columbas/internal/milp"
	"columbas/internal/mps"
	"columbas/internal/obs"
)

// Wire schemas. The error envelope mirrors columbas-error/v1 (same
// field set) under the CLI's own schema name.
const (
	resultSchema = "columbamilp-result/v1"
	errorSchema  = "columbamilp-error/v1"
)

// result is the stdout document.
type result struct {
	Schema    string             `json:"schema"`
	Instance  string             `json:"instance,omitempty"`
	File      string             `json:"file,omitempty"`
	Status    string             `json:"status"`
	Maximize  bool               `json:"maximize,omitempty"`
	Objective *float64           `json:"objective,omitempty"`
	Bound     *float64           `json:"bound,omitempty"`
	Vars      int                `json:"vars"`
	Ints      int                `json:"ints"`
	Rows      int                `json:"rows"`
	Incumbent map[string]float64 `json:"incumbent,omitempty"`
	Nodes     int                `json:"nodes"`
	RuntimeMS float64            `json:"runtime_ms"`
	Stats     *milp.SearchStats  `json:"stats,omitempty"`
}

// cliError is the single-line stderr envelope.
type cliError struct {
	Schema  string `json:"schema"`
	Code    string `json:"code"`
	Message string `json:"message"`
	Line    int    `json:"line,omitempty"`
	Col     int    `json:"col,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with the process edges injected, so the integration tests
// drive it directly. It returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("columbamilp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kernel    = fs.String("kernel", "auto", "LP basis engine: auto (size/density heuristic), dense or sparse")
		branching = fs.String("branching", "", "branch-and-bound variable selection rule: pseudocost (default) or mostfrac")
		noCuts    = fs.Bool("no-cuts", false, "disable root cutting planes (Gomory + cover)")
		noPre     = fs.Bool("no-presolve", false, "disable MILP presolve (bound tightening, redundant rows, coefficient strengthening)")
		workers   = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel branch-and-bound workers (1: sequential, -1: all cores)")
		timeout   = fs.Duration("timeout", 0, "wall-clock solve budget; 0 means none")
		stats     = fs.Bool("stats", false, "print the per-phase statistics table (docs/metrics.md) to stderr")
		traceJSON = fs.String("trace-json", "", "write the phase trace as JSON (schema columbas-trace/v1) to this file")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: columbamilp [flags] [model.mps]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1 // flag already printed the message
	}
	if fs.NArg() > 1 {
		return fail(stderr, "usage", fmt.Errorf("at most one input file, got %d", fs.NArg()))
	}

	opt := milp.Options{
		NoCuts:     *noCuts,
		NoPresolve: *noPre,
		Workers:    *workers,
		TimeLimit:  *timeout,
	}
	var err error
	if opt.Kernel, err = lp.ParseKernel(*kernel); err != nil {
		return fail(stderr, "invalid_option", err)
	}
	if *branching != "" {
		if opt.Branching, err = milp.ParseBranchRule(*branching); err != nil {
			return fail(stderr, "invalid_option", err)
		}
	}

	file := ""
	var in *mps.Instance
	if fs.NArg() == 1 {
		file = fs.Arg(0)
		in, err = mps.ParseFile(file)
	} else {
		in, err = mps.Parse(stdin)
	}
	if err != nil {
		return fail(stderr, "mps_parse", err)
	}

	var tr *obs.Trace
	if *stats || *traceJSON != "" {
		name := in.Name
		if name == "" && file != "" {
			name = filepath.Base(file)
		}
		tr = obs.New(name)
	}
	solveSp := tr.Phase("solve")
	r, err := in.Model.Solve(opt)
	if err != nil {
		solveSp.End()
		return fail(stderr, "solve", err)
	}
	solveSp.SetInt("nodes", int64(r.Nodes))
	solveSp.End()

	res := result{
		Schema:   resultSchema,
		Instance: in.Name,
		File:     file,
		Status:   r.Status.String(),
		Maximize: in.Maximize,
		Vars:     in.Model.NumVars(),
		Ints:     in.Model.NumInt(),
		Rows:     in.Model.NumRows(),
		Nodes:    r.Nodes,
		Stats:    &r.Stats,
	}
	res.RuntimeMS = float64(r.Runtime) / float64(time.Millisecond)
	if r.Status == milp.Optimal || r.Status == milp.Feasible {
		obj := in.Objective(r.Obj)
		res.Objective = &obj
		res.Incumbent = make(map[string]float64, in.Model.NumVars())
		for v := 0; v < in.Model.NumVars(); v++ {
			res.Incumbent[in.Model.Name(milp.VarID(v))] = r.X[v]
		}
	}
	if r.Status == milp.Optimal || r.Status == milp.Feasible || r.Status == milp.Limit {
		// The dual bound converts like the objective (sense flip under
		// maximization turns the lower bound into an upper one). A search
		// stopped before its root LP has no bound yet (±Inf) — JSON has
		// no encoding for that, so the field is omitted.
		if bound := in.Objective(r.Bound); !math.IsInf(bound, 0) {
			res.Bound = &bound
		}
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return fail(stderr, "encode", err)
	}

	tr.Finish()
	if *stats {
		if err := tr.WriteTable(stderr); err != nil {
			return fail(stderr, "stats", err)
		}
	}
	if *traceJSON != "" {
		if err := writeTrace(tr, *traceJSON); err != nil {
			return fail(stderr, "trace", err)
		}
	}

	switch r.Status {
	case milp.Optimal, milp.Infeasible, milp.Unbounded:
		return 0
	default:
		// Feasible/Limit: the budget (only -timeout here) expired before
		// the search was conclusive.
		fail(stderr, "timeout", fmt.Errorf("budget expired with status %s", r.Status))
		return 2
	}
}

func writeTrace(tr *obs.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fail prints the one-line error envelope and returns exit code 1.
func fail(stderr io.Writer, code string, err error) int {
	e := cliError{Schema: errorSchema, Code: code, Message: err.Error()}
	var pe *mps.ParseError
	if errors.As(err, &pe) {
		e.Line, e.Col = pe.Line, pe.Col
	}
	raw, merr := json.Marshal(e)
	if merr != nil {
		fmt.Fprintln(stderr, "columbamilp:", err)
		return 1
	}
	fmt.Fprintln(stderr, string(raw))
	return 1
}
