// Command columbafault synthesizes a design from a netlist and runs a
// single-valve fault-coverage analysis on it (stuck-open and stuck-closed
// faults per the fault models of flow-based biochip testing, the paper's
// reference [19]): structural test vectors probe fluid reachability
// between ports, and the report lists which faults the vectors detect.
//
// Usage:
//
//	columbafault -i app.netlist
//	columbafault -i app.netlist -v     # list every fault verdict
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"columbas/internal/core"
	"columbas/internal/netlist"
	"columbas/internal/obs"
	"columbas/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "columbafault:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("i", "", "input netlist description (default: stdin)")
		tl        = flag.Duration("time", 30*time.Second, "synthesis time budget")
		verbose   = flag.Bool("v", false, "list every fault verdict")
		stats     = flag.Bool("stats", false, "print the per-phase statistics table to stderr")
		traceJSON = flag.String("trace-json", "", "write the phase trace as JSON (schema columbas-trace/v1) to this file")
	)
	flag.Parse()

	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	tr := obs.New("columbafault")
	defer func() {
		tr.Finish()
		fmt.Fprintln(os.Stderr, tr.Summary())
		if *stats {
			tr.WriteTable(os.Stderr)
		}
		if *traceJSON != "" {
			if f, err := os.Create(*traceJSON); err == nil {
				tr.WriteJSON(f)
				f.Close()
			}
		}
	}()
	parseSp := tr.Phase("parse")
	n, err := netlist.Parse(src)
	parseSp.End()
	if err != nil {
		return err
	}
	tr.SetName(n.Name)
	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = *tl
	opt.Trace = tr
	res, err := core.Synthesize(n, opt)
	if err != nil {
		return err
	}
	fmt.Printf("design %s: %d control channel(s), %d fluid port(s), synthesized in %s\n",
		res.Design.Name, len(res.Design.Ctrl), len(res.Design.Inlets),
		obs.FormatDuration(res.Runtime))

	faultSp := tr.Phase("fault analysis")
	defer faultSp.End()
	ctl := sim.NewController(res.Design)
	vectors := sim.DefaultVectors(ctl)
	fmt.Printf("test set: %d structural vector(s) (open-path probes + one-hot pressurised probes)\n", len(vectors))

	rep, err := ctl.RunFaultAnalysis(vectors)
	if err != nil {
		return err
	}
	faultSp.SetInt("vectors", int64(len(vectors)))
	faultSp.SetInt("faults", int64(rep.Total))
	faultSp.SetInt("detected", int64(len(rep.Detected)))
	fmt.Printf("fault universe: %d single-valve fault(s) (stuck-open + stuck-closed)\n", rep.Total)
	fmt.Printf("coverage: %.1f%% (%d detected, %d undetected)\n",
		rep.Coverage()*100, len(rep.Detected), len(rep.Undetected))
	if *verbose {
		for _, f := range rep.Detected {
			fmt.Printf("  DETECTED   %v\n", f)
		}
		for _, f := range rep.Undetected {
			fmt.Printf("  undetected %v\n", f)
		}
	} else if len(rep.Undetected) > 0 {
		fmt.Println("undetected faults (valves off the transport paths; add functional vectors to cover):")
		for i, f := range rep.Undetected {
			if i == 8 {
				fmt.Printf("  ... and %d more (use -v)\n", len(rep.Undetected)-8)
				break
			}
			fmt.Printf("  %v\n", f)
		}
	}
	return nil
}
