// Command muxsim demonstrates the Columba S multiplexing function
// (Section 2.2, Figure 4): it builds a binary multiplexer over n control
// channels and prints, for a selected channel, the O/X configuration of
// the MUX-flow channel pairs and the resulting open/blocked state of every
// control channel — the experiment Figure 8 performs on the fabricated
// chip.
//
// Usage:
//
//	muxsim -n 15 -select 9      # the paper's Figure 4 example
//	muxsim -n 15 -all           # verify every address in turn
package main

import (
	"flag"
	"fmt"
	"os"

	"columbas/internal/module"
	"columbas/internal/mux"
	"columbas/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "muxsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int("n", 15, "number of control channels")
		sel       = flag.Int("select", 9, "channel to select")
		all       = flag.Bool("all", false, "exercise every address")
		table     = flag.Bool("table", false, "print the full addressing table")
		stats     = flag.Bool("stats", false, "print the per-phase statistics table to stderr")
		traceJSON = flag.String("trace-json", "", "write the phase trace as JSON (schema columbas-trace/v1) to this file")
	)
	flag.Parse()
	if *n < 1 {
		return fmt.Errorf("-n must be positive")
	}
	tr := obs.New(fmt.Sprintf("muxsim-n%d", *n))
	defer func() {
		tr.Finish()
		fmt.Fprintln(os.Stderr, tr.Summary())
		if *stats {
			tr.WriteTable(os.Stderr)
		}
		if *traceJSON != "" {
			if f, err := os.Create(*traceJSON); err == nil {
				tr.WriteJSON(f)
				f.Close()
			}
		}
	}()
	sp := tr.Phase("build")
	xs := make([]float64, *n)
	for i := range xs {
		xs[i] = float64(i) * 2 * module.D
	}
	m, err := mux.Build(xs, true, 0)
	if err != nil {
		sp.End()
		return err
	}
	sp.SetInt("channels", int64(m.N))
	sp.SetInt("address_bits", int64(m.Bits))
	sp.SetInt("valves", int64(len(m.Valves)))
	sp.End()
	fmt.Printf("multiplexer: %d control channel(s), %d address bit(s), %d pressure inlet(s) (2*ceil(log2 n)+1)\n",
		m.N, m.Bits, m.Inlets())
	fmt.Printf("MUX-flow lines: %d addressing + 1 pressure main, %d valve(s)\n\n", 2*m.Bits, len(m.Valves))

	if *table {
		fmt.Println("address  binary  pair configuration")
		fmt.Print(m.AddressTable())
		return nil
	}
	sim := tr.Phase("simulate")
	defer sim.End()

	show := func(c int) error {
		sim.Add("addresses", 1)
		s, err := m.Select(c)
		if err != nil {
			return err
		}
		fmt.Printf("select channel %d (binary %0*b): pair configuration %s\n",
			c, max(m.Bits, 1), c, m.PairString(s))
		open := m.Open(s)
		fmt.Print("channel state: ")
		for i := 0; i < m.N; i++ {
			if len(open) > 0 && contains(open, i) {
				fmt.Printf("[%d:OPEN] ", i)
			} else {
				fmt.Printf("%d:blocked ", i)
			}
		}
		fmt.Println()
		if len(open) != 1 || open[0] != c {
			return fmt.Errorf("isolation violated: open=%v", open)
		}
		return nil
	}
	if *all {
		for c := 0; c < m.N; c++ {
			if err := show(c); err != nil {
				return err
			}
		}
		fmt.Println("\nall addresses isolate exactly their channel")
		return nil
	}
	if *sel < 0 || *sel >= m.N {
		return fmt.Errorf("-select out of range [0,%d)", m.N)
	}
	return show(*sel)
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
