// Command columbas synthesizes a manufacturing-ready mLSI design from a
// plain-text netlist description, reproducing the Columba S flow
// (Figure 5): planarization, layout generation, layout validation,
// multiplexer synthesis and result interpretation.
//
// Usage:
//
//	columbas -i app.netlist -o design.svg
//	columbas -i app.netlist -o design.scr -muxes 2 -time 60s
//	columbas -i app.netlist -stats -trace-json trace.json
//	columbas -i app.netlist -pprof-cpu cpu.out -pprof-mem mem.out
//
// The output format follows the -o extension (.svg, .scr, .json) unless
// -format overrides it. With no -o the design summary goes to stdout.
// -stats prints the per-phase observability table (docs/metrics.md) to
// stderr; -trace-json writes the same data machine-readably.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"columbas/internal/core"
	"columbas/internal/export"
	"columbas/internal/hls"
	"columbas/internal/netlist"
	"columbas/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "columbas:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("i", "", "input netlist description (default: stdin)")
		out       = flag.String("o", "", "output file (.svg/.scr/.json); default: summary to stdout")
		format    = flag.String("format", "", "output format override: "+strings.Join(export.Names(), ", "))
		muxes     = flag.Int("muxes", 0, "override the netlist's multiplexer count (1 or 2)")
		tl        = flag.Duration("time", 30*time.Second, "layout generation time budget")
		effort    = flag.String("effort", "auto", "placement effort: full, guided, seed or auto")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel branch-and-bound workers for layout generation (1: sequential, -1: all cores)")
		noWarm    = flag.Bool("no-warmstart", false, "solve every branch-and-bound LP cold instead of warm-starting from the parent basis (ablation)")
		noCuts    = flag.Bool("no-cuts", false, "disable root cutting planes (Gomory + cover) in the layout MILPs (ablation)")
		noPre     = flag.Bool("no-presolve", false, "disable MILP presolve (bound tightening, redundant rows, coefficient strengthening) (ablation)")
		noDelta   = flag.Bool("no-delta", false, "ignore any delta warm-start donor and solve cold (ablation)")
		branching = flag.String("branching", "", "branch-and-bound variable selection rule: pseudocost (default) or mostfrac")
		kernel    = flag.String("kernel", "auto", "LP basis engine: auto (size/density heuristic), dense or sparse")
		noDRC     = flag.Bool("nodrc", false, "skip the design-rule check")
		stats     = flag.Bool("stats", false, "print the per-phase statistics table (docs/metrics.md) to stderr")
		traceJSON = flag.String("trace-json", "", "write the phase trace as JSON (schema columbas-trace/v1) to this file")
		pprofCPU  = flag.String("pprof-cpu", "", "write a CPU profile of the whole run to this file")
		pprofMem  = flag.String("pprof-mem", "", "write a heap profile at exit to this file")
		plan      = flag.String("plan", "", "also write the generation-phase rectangle plan (Figure 6(b)) as SVG to this file")
		assay     = flag.Bool("assay", false, "input is an assay description (high-level synthesis front end)")
	)
	flag.Parse()

	// The flags map onto the same OptionSpec the columbasd HTTP API
	// decodes, so validation and option semantics are identical across
	// both front ends.
	spec := core.OptionSpec{
		Muxes:       *muxes,
		Time:        tl.String(),
		Effort:      *effort,
		Workers:     *workers,
		NoDRC:       *noDRC,
		NoWarmStart: *noWarm,
		NoCuts:      *noCuts,
		NoPresolve:  *noPre,
		NoDelta:     *noDelta,
		Branching:   *branching,
		Kernel:      *kernel,
	}
	opt, err := spec.Apply(core.DefaultOptions())
	if err != nil {
		return err
	}

	if *pprofCPU != "" {
		stop, err := obs.StartCPUProfile(*pprofCPU)
		if err != nil {
			return err
		}
		defer stop()
	}
	if *pprofMem != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*pprofMem); err != nil {
				fmt.Fprintln(os.Stderr, "columbas:", err)
			}
		}()
	}

	var tr *obs.Trace // nil unless requested: tracing stays off by default
	if *stats || *traceJSON != "" {
		name := "stdin"
		if *in != "" {
			name = filepath.Base(*in)
		}
		tr = obs.New(name)
	}

	var src *os.File
	if *in == "" {
		src = os.Stdin
	} else {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	parseSp := tr.Phase("parse")
	var n *netlist.Netlist
	if *assay {
		a, aerr := hls.Parse(src)
		if aerr != nil {
			parseSp.End()
			return aerr
		}
		if n, err = a.Compile(); err != nil {
			parseSp.End()
			return err
		}
		fmt.Fprintf(os.Stderr, "assay %s: %d operation(s), %d lane(s) -> %d unit(s)\n",
			a.Name, a.Ops(), a.Lanes(), n.NumUnits())
	} else if n, err = netlist.Parse(src); err != nil {
		parseSp.End()
		return err
	}
	parseSp.SetInt("units", int64(n.NumUnits()))
	parseSp.End()
	tr.SetName(n.Name)
	if err := spec.ApplyNetlist(n); err != nil {
		return err
	}
	opt.Trace = tr

	res, err := core.Synthesize(n, opt)
	if err != nil {
		return err
	}
	m := res.Metrics()
	fmt.Fprintf(os.Stderr, "%s: %d unit(s), %d-MUX — %.2f x %.2f mm, L_f %.2f mm, %d control inlet(s), %s\n",
		m.Name, m.Units, m.Muxes, m.WidthMM, m.HeightMM, m.FlowMM, m.CtrlInlets,
		obs.FormatDuration(m.Runtime))
	if res.DRC != nil {
		fmt.Fprintf(os.Stderr, "drc: %d rule(s) checked, %d violation(s)\n",
			res.DRC.Checked, len(res.DRC.Violations))
	}
	if *plan != "" {
		pf, err := os.Create(*plan)
		if err != nil {
			return err
		}
		if err := res.WritePlanSVG(pf); err != nil {
			pf.Close()
			return err
		}
		pf.Close()
	}

	if err := writeOutput(res, tr, *out, *format); err != nil {
		return err
	}
	tr.Finish()
	if *stats {
		if err := tr.WriteTable(os.Stderr); err != nil {
			return err
		}
	}
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err != nil {
			return err
		}
		if err := tr.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *traceJSON)
	}
	return nil
}

// writeOutput renders the result in the requested format, recording the
// work as the trace's "export" phase.
func writeOutput(res *core.Result, tr *obs.Trace, out, format string) error {
	f := format
	if f == "" && out != "" {
		f = strings.TrimPrefix(filepath.Ext(out), ".")
	}
	var w *os.File
	if out == "" {
		w = os.Stdout
		if f == "" {
			f = "json"
		}
	} else {
		var err error
		w, err = os.Create(out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	fm, ok := export.Lookup(f)
	if !ok {
		return fmt.Errorf("unknown output format %q (want one of %s)",
			f, strings.Join(export.Names(), ", "))
	}
	sp := tr.Phase("export")
	sp.Label("format", fm.Name)
	defer sp.End()
	return fm.Write(w, res.Design, res.Plan)
}
