// Command columbaload is the tail-latency load harness for columbasd's
// v2 job API. It fires a deterministic mix of cache-hit, cache-miss
// and cancel requests at a server — an external one via -url, or an
// in-process instance it spins up itself — follows every job's SSE
// progress stream to its terminal state, and writes a
// columbas-load/v2 JSON report (p50/p90/p95/p99/max latency, shed and
// error counts, final server stats). Percentiles the sample is too small
// to support are null in the report and "n/a" on stderr — a p99 over 9
// samples would only restate the maximum. BENCH_serving.json is this
// program's output.
//
// Usage:
//
//	columbaload -n 1000 -c 64 -o BENCH_serving.json
//	columbaload -url http://host:8080 -n 200 -hit 0.5 -cancel 0.1
//	columbaload -n 400 -jobs 2 -queue 4 -o /dev/null   # provoke shedding
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"columbas/internal/bench"
	"columbas/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "columbaload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		url      = flag.String("url", "", "target server base URL (empty: run an in-process server)")
		n        = flag.Int("n", 1000, "total requests")
		c        = flag.Int("c", 64, "concurrent clients")
		hit      = flag.Float64("hit", 0.5, "fraction of requests re-submitting a hot design (cache hits)")
		cancel   = flag.Float64("cancel", 0.1, "fraction of requests canceled right after submission")
		timeout  = flag.String("timeout", "60s", "per-job deadline option sent with every request")
		missTime = flag.String("miss-time", "500ms", "MILP budget for hit/miss requests (past it the solver degrades to the greedy seed)")
		seed     = flag.Int64("seed", 1, "schedule and netlist generator seed")
		warmup   = flag.Bool("warmup", true, "pre-solve the hot pool serially before the timed run so hit requests measure real cache hits")
		out      = flag.String("o", "-", "report path (-: stdout)")

		// In-process server shape (ignored with -url).
		jobs   = flag.Int("jobs", runtime.GOMAXPROCS(0), "in-process server: max concurrent solves")
		queue  = flag.Int("queue", 0, "in-process server: admission queue bound (0: 8x jobs, -1: no queue)")
		cacheN = flag.Int("cache", 1024, "in-process server: result cache capacity")
	)
	flag.Parse()
	if *hit < 0 || *cancel < 0 || *hit+*cancel > 1 {
		return fmt.Errorf("-hit and -cancel must be non-negative and sum to at most 1")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := *url
	if base == "" {
		srv := server.New(server.Config{
			Jobs:         *jobs,
			MaxQueue:     *queue,
			CacheEntries: *cacheN,
		})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		defer func() {
			srv.Drain()
			wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer wcancel()
			srv.WaitIdle(wctx)
		}()
		base = ts.URL
		fmt.Fprintf(os.Stderr, "columbaload: in-process server at %s (%d job(s), queue %d)\n",
			base, *jobs, *queue)
	}

	rep, err := bench.RunLoad(ctx, bench.LoadOptions{
		BaseURL:        base,
		Requests:       *n,
		Concurrency:    *c,
		HitFraction:    *hit,
		CancelFraction: *cancel,
		Timeout:        *timeout,
		MissTime:       *missTime,
		Seed:           *seed,
		Warmup:         *warmup,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr,
		"columbaload: %d requests in %.2fs (%.1f rps): %d ok (%d hits), %d canceled, %d shed, %d timeouts, %d failed, %d errors\n",
		*n, rep.DurationS, rep.ThroughputRPS,
		rep.Succeeded, rep.CacheHits, rep.Canceled, rep.Shed, rep.Timeouts, rep.Failed, rep.Errors)
	l := rep.Latency
	pv := func(p *float64) string {
		if p == nil {
			return "n/a"
		}
		return fmt.Sprintf("%.1fms", *p)
	}
	fmt.Fprintf(os.Stderr,
		"columbaload: latency (n=%d) p50 %s  p90 %s  p95 %s  p99 %s  max %.1fms\n",
		l.Count, pv(l.P50MS), pv(l.P90MS), pv(l.P95MS), pv(l.P99MS), l.MaxMS)

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	return os.WriteFile(*out, doc, 0o644)
}
