// Command columbasd serves the Columba S synthesis flow over HTTP. The
// primary surface is the v2 job API — POST /v2/jobs accepts a job and
// answers 202, GET /v2/jobs/{id} reports it, /events streams SSE
// progress, DELETE cancels the in-flight MILP solve — in front of a
// bounded solver pool with admission control (bounded queue,
// deadline-aware shedding with Retry-After), a content-addressed result
// cache, a TTL-collected job store, and graceful shutdown that drains
// running solves. POST /v1/synthesize remains as a synchronous wrapper
// over the same job path. See docs/api.md for the endpoint contract.
//
// Usage:
//
//	columbasd -addr :8080
//	columbasd -addr :8080 -jobs 4 -workers 2 -cache 256
//	columbasd -addr :8080 -queue 16 -job-ttl 10m
//	columbasd -addr :8080 -trace-log traces.jsonl
//
// Operational endpoints: GET /healthz (liveness: always 200), GET
// /readyz (readiness: 503 with Retry-After while draining), GET
// /v1/stats (pool, admission, job-store, request and cache counters),
// GET /v1/formats (the export format registry). SIGINT/SIGTERM starts a
// graceful drain bounded by -drain; async jobs still running past the
// HTTP shutdown are awaited for the same budget.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"columbas/internal/lp"
	"columbas/internal/milp"
	"columbas/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "columbasd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "max concurrent synthesis jobs")
		queue    = flag.Int("queue", 0, "admission queue bound past the pool (0: 8x jobs, -1: no queue)")
		jobTTL   = flag.Duration("job-ttl", 0, "retention of finished job resources (0: 5m, -1s: keep forever)")
		workers  = flag.Int("workers", 1, "MILP branch-and-bound workers per job (-1: all cores)")
		cacheN   = flag.Int("cache", 128, "result cache capacity in designs (-1: disable)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "default per-request synthesis deadline (-1s: none)")
		maxTime  = flag.Duration("max-time", 5*time.Minute, "cap on the per-request ?time= MILP budget")
		maxBody  = flag.Int64("max-body", 1<<20, "max netlist source size in bytes")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown budget for in-flight solves")
		traceLog = flag.String("trace-log", "", "append one columbas-trace/v1 JSON line per request to this file")
		noCuts   = flag.Bool("no-cuts", false, "disable root cutting planes (Gomory + cover) in the layout MILPs (ablation)")
		noPre    = flag.Bool("no-presolve", false, "disable MILP presolve (bound tightening, redundant rows, coefficient strengthening) (ablation)")
		noDelta  = flag.Bool("no-delta", false, "disable the delta-aware warm-start pipeline: no similarity-index donors, every solve cold (ablation)")
		branch   = flag.String("branching", "", "branch-and-bound variable selection rule: pseudocost (default) or mostfrac")
		kernel   = flag.String("kernel", "auto", "LP basis engine: auto (size/density heuristic), dense or sparse")
	)
	flag.Parse()

	if *jobs < 1 {
		return fmt.Errorf("-jobs must be at least 1, got %d", *jobs)
	}
	if *workers == 0 || *workers < -1 {
		return fmt.Errorf("-workers must be -1 (all cores) or at least 1, got %d", *workers)
	}
	if *cacheN < -1 {
		return fmt.Errorf("-cache must be -1 (disable), 0 (default) or a capacity, got %d", *cacheN)
	}

	rule, err := milp.ParseBranchRule(*branch)
	if err != nil {
		return fmt.Errorf("-branching: %w", err)
	}
	kernelMode, err := lp.ParseKernel(*kernel)
	if err != nil {
		return fmt.Errorf("-kernel: %w", err)
	}

	cfg := server.Config{
		Jobs:           *jobs,
		MaxQueue:       *queue,
		JobTTL:         *jobTTL,
		Workers:        *workers,
		CacheEntries:   *cacheN,
		DefaultTimeout: *timeout,
		MaxLayoutTime:  *maxTime,
		MaxBodyBytes:   *maxBody,
		NoCuts:         *noCuts,
		NoPresolve:     *noPre,
		NoDelta:        *noDelta,
		Branching:      rule,
		Kernel:         kernelMode,
	}
	if *traceLog != "" {
		f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.TraceSink = f
	}
	srv := server.New(cfg)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "columbasd: listening on %s (%d job(s) x %d worker(s), cache %d)\n",
			*addr, *jobs, *workers, *cacheN)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // ListenAndServe failed outright (e.g. bind error)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "columbasd: draining in-flight solves...")
	srv.Drain()
	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Async jobs are detached from their submitting connections, so the
	// HTTP shutdown above does not imply the pool is idle. Wait for the
	// remaining solves inside the same drain budget.
	if err := srv.WaitIdle(shCtx); err != nil {
		return fmt.Errorf("draining async jobs: %w", err)
	}
	fmt.Fprintln(os.Stderr, "columbasd: drained, bye")
	return nil
}
