// Command benchtab regenerates the paper's evaluation artifacts:
//
//   - Table 1: design-feature comparison between the Columba 2.0 baseline
//     and Columba S (1-MUX and 2-MUX) on all six test cases;
//   - the Figure 1 comparison (-fig1): the kinase-activity design's run
//     time, inlet count and flow-channel length under both tools.
//
// Absolute numbers differ from the paper (different machine, and a pure-Go
// MILP solver substitutes for Gurobi — see DESIGN.md); the qualitative
// trends of Section 4 are checked and reported explicitly.
//
// Usage:
//
//	benchtab                     # full Table 1 (several minutes)
//	benchtab -cases nap6,chip9   # subset
//	benchtab -fig1               # the Figure 1 comparison only
//	benchtab -stime 10s -btime 10s -quick
//	benchtab -json BENCH_run.json -pprof-cpu cpu.out
//
// -json writes the columbas-bench/v1 report (docs/metrics.md): the Table 1
// metrics plus, for every Columba S run, the per-phase trace with the
// milp_* solver counters — the stable artifact future performance PRs
// diff against.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"columbas/internal/bench"
	"columbas/internal/cases"
	"columbas/internal/lp"
	"columbas/internal/milp"
	"columbas/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		caseList = flag.String("cases", "", "comma-separated case ids (default: all six)")
		stime    = flag.Duration("stime", 60*time.Second, "Columba S time budget per design")
		btime    = flag.Duration("btime", 30*time.Second, "Columba 2.0 baseline time budget")
		quick    = flag.Bool("quick", false, "small stall limit for a fast smoke run")
		noBase   = flag.Bool("skip-baseline", false, "skip the Columba 2.0 runs")
		fig1     = flag.Bool("fig1", false, "run the Figure 1 kinase comparison only")
		csvPath  = flag.String("csv", "", "also write the results as CSV to this file")
		jsonPath = flag.String("json", "", "also write the columbas-bench/v1 JSON report (per-phase breakdown) to this file")
		workers  = flag.Int("workers", 0, "branch-and-bound workers per Columba S solve (0/1: sequential, -1: all cores)")
		noWarm   = flag.Bool("no-warmstart", false, "solve every branch-and-bound LP cold instead of warm-starting from the parent basis (ablation)")
		noCuts   = flag.Bool("no-cuts", false, "disable root cutting planes (Gomory + cover) in the layout MILPs (ablation)")
		noPre    = flag.Bool("no-presolve", false, "disable MILP presolve (bound tightening, redundant rows, coefficient strengthening) (ablation)")
		noDelta  = flag.Bool("no-delta", false, "disable the delta-aware warm-start pipeline: ignore any donor hint, solve cold (ablation)")
		branch   = flag.String("branching", "", "branch-and-bound variable selection rule: pseudocost (default) or mostfrac")
		kernel   = flag.String("kernel", "auto", "LP basis engine: auto (size/density heuristic), dense or sparse")
		pprofCPU = flag.String("pprof-cpu", "", "write a CPU profile of the whole run to this file")
		pprofMem = flag.String("pprof-mem", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *workers < -1 {
		return fmt.Errorf("-workers must be -1 (all cores), 0/1 (sequential) or a worker count, got %d", *workers)
	}

	if *pprofCPU != "" {
		stop, err := obs.StartCPUProfile(*pprofCPU)
		if err != nil {
			return err
		}
		defer stop()
	}
	if *pprofMem != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*pprofMem); err != nil {
				fmt.Fprintln(os.Stderr, "benchtab:", err)
			}
		}()
	}

	cfg := bench.DefaultConfig()
	cfg.STime = *stime
	cfg.BTime = *btime
	cfg.SkipBaseline = *noBase
	cfg.Workers = *workers
	cfg.NoWarmStart = *noWarm
	cfg.NoCuts = *noCuts
	cfg.NoPresolve = *noPre
	cfg.NoDelta = *noDelta
	var err error
	if cfg.Branching, err = milp.ParseBranchRule(*branch); err != nil {
		return fmt.Errorf("-branching: %w", err)
	}
	if cfg.Kernel, err = lp.ParseKernel(*kernel); err != nil {
		return fmt.Errorf("-kernel: %w", err)
	}
	if *quick {
		cfg.StallLimit = 40
	}

	if *fig1 {
		return runFig1(cfg)
	}

	var cs []cases.Case
	if *caseList == "" {
		cs = cases.Table1()
	} else {
		for _, id := range strings.Split(*caseList, ",") {
			c, err := cases.Get(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			cs = append(cs, c)
		}
	}

	fmt.Println("Table 1: design features, Columba 2.0 baseline vs Columba S")
	fmt.Printf("budgets: S %v, baseline %v; solver: internal branch-and-bound (see DESIGN.md)\n\n", cfg.STime, cfg.BTime)
	var rows []*bench.Row
	for _, c := range cs {
		fmt.Fprintf(os.Stderr, "running %s (#u=%d)...\n", c.ID, c.Units)
		rows = append(rows, bench.RunCase(c, cfg))
	}
	fmt.Println(bench.FormatTable(rows))
	fmt.Println("qualitative trends (Section 4):")
	fmt.Println(bench.TrendReport(rows))
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(bench.FormatCSV(rows)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
	if *jsonPath != "" {
		doc, err := bench.FormatJSON(rows)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, doc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
	return nil
}

// runFig1 reproduces the Figure 1 comparison: the kinase-activity design
// under Columba 2.0 (a) and Columba S (b).
func runFig1(cfg bench.Config) error {
	c, err := cases.Get("kinase21")
	if err != nil {
		return err
	}
	fmt.Println("Figure 1: kinase-activity application [17], Columba 2.0 vs Columba S")
	fmt.Println("paper: (a) 2.0: 56 s, 22 inlets, 58.9 mm flow; (b) S: 0.9 s, 18 inlets, 39.85 mm flow")
	fmt.Println()
	row := bench.RunCase(c, cfg)
	if row.Err != nil {
		return row.Err
	}
	if row.Baseline != nil && !row.Baseline.TooLarge {
		fmt.Printf("(a) Columba 2.0: %8.1f s, %d control inlets + fluid ports, L_f %.2f mm, %.1f x %.1f mm\n",
			row.Baseline.Runtime.Seconds(), row.Baseline.CtrlInlets, row.Baseline.FlowMM,
			row.Baseline.WidthMM, row.Baseline.HeightMM)
	}
	m := row.S1.Metrics
	fmt.Printf("(b) Columba S:   %8.1f s, %d control inlets (+%d fluid ports), L_f %.2f mm, %.1f x %.1f mm\n",
		m.Runtime.Seconds(), m.CtrlInlets, m.FluidPorts, m.FlowMM, m.WidthMM, m.HeightMM)
	if row.Baseline != nil && !row.Baseline.TooLarge {
		fmt.Printf("\nspeedup: %.0fx; flow reduction: %+.0f%%; inlet reduction: %+.0f%%\n",
			row.Baseline.Runtime.Seconds()/m.Runtime.Seconds(),
			(m.FlowMM-row.Baseline.FlowMM)/row.Baseline.FlowMM*100,
			float64(m.CtrlInlets-row.Baseline.CtrlInlets)/float64(row.Baseline.CtrlInlets)*100)
	}
	return nil
}
