// Command columbadelta measures the delta-aware warm-start pipeline and
// writes the columbas-delta/v1 JSON report behind BENCH_delta.json. It
// runs two scenarios, each instance solved cold (-no-delta ablation) and
// delta-warm: an edit-sequence chain (the base case re-synthesized after
// a string of single-unit edits, each warm solve chaining a hint from
// its predecessor) and a weight sweep (one netlist under a grid of
// objective weights, each cell chaining from its nearest finished
// neighbor in weight space — the POST /v2/explore pattern).
//
// Usage:
//
//	columbadelta -o BENCH_delta.json
//	columbadelta -case chip16 -steps 5 -grid 0.5,1,2 -time 30s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"columbas/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "columbadelta:", err)
		os.Exit(1)
	}
}

func run() error {
	def := bench.DefaultDeltaConfig()
	var (
		caseID  = flag.String("case", def.Case, "base netlist case (empty: a generated small netlist)")
		steps   = flag.Int("steps", def.Steps, "single-unit edits in the chain")
		seed    = flag.Int64("seed", def.Seed, "edit-choice (and generator) seed")
		budget  = flag.Duration("time", def.Time, "MILP budget per solve")
		stall   = flag.Int("stall", def.StallLimit, "branch-and-bound stall limit")
		workers = flag.Int("workers", def.Workers, "branch-and-bound workers (0/1: sequential)")
		gap     = flag.Float64("gap", def.Gap, "relative optimality gap")
		grid    = flag.String("grid", "0.5,1,2", "comma-separated weight-sweep axis values (empty: skip the sweep)")
		out     = flag.String("o", "-", "report path (-: stdout)")
	)
	flag.Parse()

	cfg := bench.DeltaConfig{
		Case:       *caseID,
		Steps:      *steps,
		Seed:       *seed,
		Time:       *budget,
		StallLimit: *stall,
		Workers:    *workers,
		Gap:        *gap,
	}
	if *grid != "" {
		for _, f := range strings.Split(*grid, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v < 0 {
				return fmt.Errorf("-grid values must be non-negative numbers: %q", f)
			}
			cfg.Grid = append(cfg.Grid, v)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	rep, err := bench.RunDelta(ctx, cfg)
	if err != nil {
		return err
	}
	es := rep.EditSequence
	fmt.Fprintf(os.Stderr,
		"columbadelta: edit chain %d steps: cold %.1fs, warm %.1fs (%.1f%% faster), agree=%t\n",
		len(es.Steps), es.ColdTotalMS/1e3, es.WarmTotalMS/1e3, es.SpeedupPct, es.AllAgree)
	if ws := rep.WeightSweep; ws != nil {
		fmt.Fprintf(os.Stderr,
			"columbadelta: weight sweep %d cells: cold %.1fs, warm %.1fs (%.1f%% faster), agree=%t\n",
			len(ws.Steps), ws.ColdTotalMS/1e3, ws.WarmTotalMS/1e3, ws.SpeedupPct, ws.AllAgree)
	}
	fmt.Fprintf(os.Stderr, "columbadelta: total harness wall %.1fs\n", time.Since(start).Seconds())

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	return os.WriteFile(*out, doc, 0o644)
}
