// Muxdemo reproduces the Figure 8 experiment in simulation: on the mRNA
// isolation design (the paper's third test case, whose fabricated chip
// Figure 8 photographs), select one control channel through the
// multiplexer's bit configuration, verify the addressing isolates exactly
// that channel, and show that the pressurised valve blocks fluid flow while
// the other lanes stay open.
//
// Run with:
//
//	go run ./examples/muxdemo
package main

import (
	"fmt"
	"log"
	"time"

	"columbas/internal/cases"
	"columbas/internal/core"
	"columbas/internal/sim"
)

func main() {
	c, err := cases.Get("mrna8")
	if err != nil {
		log.Fatal(err)
	}
	n, err := c.Netlist()
	if err != nil {
		log.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = 20 * time.Second
	res, err := core.Synthesize(n, opt)
	if err != nil {
		log.Fatal(err)
	}
	d := res.Design
	fmt.Printf("mRNA isolation design: %d control channels through one multiplexer (%d inlets)\n\n",
		d.MuxBottom.N, d.MuxBottom.Inlets())

	// Figure 8(b): the bit configuration that selects m1's inlet valve.
	target := "m1.in"
	var idx = -1
	for _, ch := range d.Ctrl {
		if ch.Name == target {
			idx = ch.MuxIndex
		}
	}
	if idx < 0 {
		log.Fatalf("channel %s not found", target)
	}
	sel, err := d.MuxBottom.Select(idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 8(b): selecting channel %q (address %d of %d)\n", target, idx, d.MuxBottom.N)
	fmt.Printf("  MUX-flow pair configuration: %s\n", d.MuxBottom.BitString(sel))
	open := d.MuxBottom.Open(sel)
	fmt.Printf("  open pressure paths under this configuration: %v (exactly the target)\n\n", open)

	// Figure 8(c)/(d): the valve blocks the fluid path.
	ctl := sim.NewController(d)
	in, err := sim.InletPoint(d, "cells1")
	if err != nil {
		log.Fatal(err)
	}
	out, err := sim.InletPoint(d, "cdna1")
	if err != nil {
		log.Fatal(err)
	}
	g := ctl.BuildFlowGraph()
	fmt.Printf("Figure 8(c): valve open  — cells1 -> cdna1 reachable: %v\n", g.Reachable(in, out))

	if err := ctl.Set(target, true); err != nil {
		log.Fatal(err)
	}
	g = ctl.BuildFlowGraph()
	fmt.Printf("Figure 8(d): valve closed — cells1 -> cdna1 reachable: %v\n", g.Reachable(in, out))

	// The neighbouring lane is unaffected: individual control despite the
	// shared multiplexer.
	in2, err := sim.InletPoint(d, "cells2")
	if err != nil {
		log.Fatal(err)
	}
	out2, err := sim.InletPoint(d, "cdna2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("             lane 2 unaffected — cells2 -> cdna2 reachable: %v\n", g.Reachable(in2, out2))

	fmt.Printf("\nactuations: %d, simulated addressing time: %v (10 ms per valve)\n",
		ctl.Actuations, ctl.Elapsed)
}
