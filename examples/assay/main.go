// Assay demonstrates the full application-to-chip pipeline: a biological
// assay described as a dataflow of fluidic operations is compiled to a
// netlist (internal/hls), synthesized into a chip (internal/core), and its
// per-lane schedules execute on the synthesized design (internal/sim) —
// including re-running a modified protocol on the same chip, the
// reconfigurability property Section 1 of the paper claims for
// multiplexed designs.
//
// Run with:
//
//	go run ./examples/assay
package main

import (
	"fmt"
	"log"
	"time"

	"columbas/internal/core"
	"columbas/internal/hls"
	"columbas/internal/sim"
)

func main() {
	// A 4-lane immunoprecipitation assay: bind chromatin to antibody
	// beads in a sieve mixer, wash, then react and collect.
	assay := hls.NewAssay("ip4").
		Mix("bind", 3, hls.Fluid("chromatin"), hls.Fluid("beads")).
		Wash("bind").
		Incubate("react", "bind").
		Collect("react", "product").
		Replicate(4, true). // 4 lanes sharing control channels
		WithMuxes(1)
	if err := assay.Err(); err != nil {
		log.Fatal(err)
	}

	n, err := assay.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assay %q compiled: %d units in %d lane(s), %d parallel group(s)\n",
		n.Name, n.NumUnits(), assay.Lanes(), len(n.Parallel))
	fmt.Println("── compiled netlist ──")
	fmt.Print(n.Format())

	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = 20 * time.Second
	res, err := core.Synthesize(n, opt)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Metrics()
	fmt.Printf("\nsynthesized: %.1f x %.1f mm, %d control inlets, DRC %d violation(s), %v\n",
		m.WidthMM, m.HeightMM, m.CtrlInlets, len(res.DRC.Violations),
		m.Runtime.Round(time.Millisecond))

	// Execute the assay protocol on every lane. Lanes share control, so
	// each schedule drives all lanes simultaneously — one run suffices,
	// but every lane's view resolves to the same shared channels.
	ctl := sim.NewController(res.Design)
	p, err := assay.Schedule(0)
	if err != nil {
		log.Fatal(err)
	}
	dur, err := p.Execute(ctl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprotocol %q: %d operation(s), %d valve actuation(s), %v simulated\n",
		p.Name, p.Ops(), ctl.Actuations, dur)

	// Reconfigure: a longer wash protocol runs on the SAME chip.
	deep := sim.NewProtocol("deep-wash").
		Mix("bind_l1", 5).
		Wash("bind_l1").
		Wash("bind_l1").
		Wash("bind_l1").
		Transfer("bind_l1", "react_l1")
	ctl2 := sim.NewController(res.Design)
	dur2, err := deep.Execute(ctl2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconfigured protocol %q on the same design: %v simulated\n", deep.Name, dur2)
	fmt.Println("\nno re-synthesis needed: multiplexed control adapts to any schedule (Section 1).")
}
