// ChIP: the paper's running example (Figure 7) — the automated chromatin
// immunoprecipitation application of Wu et al. [3]. This example walks the
// complete mLSI production flow Columba S supports:
//
//	(a) the plain-text netlist description,
//	(b) the synthesized design (written to chip4.svg),
//	(c) instead of chip fabrication, a design-rule check plus a fluid
//	    routability simulation of the collection path.
//
// It then scales up to the ChIP 64-IP design of Figure 7(d) in its 2-MUX
// variant.
//
// Run with:
//
//	go run ./examples/chip
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"columbas/internal/cases"
	"columbas/internal/core"
	"columbas/internal/sim"
)

func main() {
	// (a) The netlist description.
	c, err := cases.Get("chip9")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("── Figure 7(a): netlist description ──")
	fmt.Println(c.Source)

	// (b) Synthesis.
	n, err := c.Netlist()
	if err != nil {
		log.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = 20 * time.Second
	res, err := core.Synthesize(n, opt)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Metrics()
	fmt.Println("── Figure 7(b): synthesized design ──")
	fmt.Printf("%d units, %.2f x %.2f mm, L_f %.2f mm, %d control inlets, %v\n",
		m.Units, m.WidthMM, m.HeightMM, m.FlowMM, m.CtrlInlets,
		m.Runtime.Round(time.Millisecond))
	f, err := os.Create("chip4.svg")
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteSVG(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Println("wrote chip4.svg")

	// (c) Feasibility evidence in lieu of fabrication.
	fmt.Println("── Figure 7(c): feasibility (DRC + fluid simulation) ──")
	fmt.Printf("DRC: %d rules checked, %d violations\n",
		res.DRC.Checked, len(res.DRC.Violations))
	ctl := sim.NewController(res.Design)
	in, err := sim.InletPoint(res.Design, "chromatin1")
	if err != nil {
		log.Fatal(err)
	}
	waste, err := sim.InletPoint(res.Design, "waste")
	if err != nil {
		log.Fatal(err)
	}
	g := ctl.BuildFlowGraph()
	fmt.Printf("fluid path chromatin1 -> waste (through IP lane and switch): %v\n",
		g.Reachable(in, waste))

	// (d) The ChIP 64-IP scale-up, 2-MUX variant (Figure 7(d)).
	fmt.Println("── Figure 7(d): ChIP 64-IP, 2-MUX ──")
	big, err := cases.ChIP64().WithMuxes(2).Netlist()
	if err != nil {
		log.Fatal(err)
	}
	opt.Layout.TimeLimit = 60 * time.Second
	bres, err := core.Synthesize(big, opt)
	if err != nil {
		log.Fatal(err)
	}
	bm := bres.Metrics()
	fmt.Printf("%d units in 8 parallel-execution groups: %.1f x %.1f mm, %d control inlets, %v\n",
		bm.Units, bm.WidthMM, bm.HeightMM, bm.CtrlInlets, bm.Runtime.Round(time.Millisecond))
	f2, err := os.Create("chip64.svg")
	if err != nil {
		log.Fatal(err)
	}
	if err := bres.WriteSVG(f2); err != nil {
		log.Fatal(err)
	}
	f2.Close()
	fmt.Println("wrote chip64.svg")
}
