// Scaling sweeps the synthetic ChIP application family over increasing
// sizes, demonstrating the paper's headline claim: Columba S synthesizes
// designs with hundreds of functional units in minutes, with control
// inlets growing logarithmically (2*ceil(log2 n)+1 per multiplexer).
//
// Run with:
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"time"

	"columbas/internal/cases"
	"columbas/internal/core"
)

func main() {
	fmt.Printf("%6s %6s %8s %14s %10s %8s %10s\n",
		"nIP", "#u", "groups", "dim (mm)", "L_f (mm)", "#c_in", "runtime")
	configs := []struct{ nIP, groups int }{
		{8, 2}, {16, 4}, {32, 4}, {64, 8}, {128, 16},
	}
	for _, cfg := range configs {
		c, err := cases.ChIPScale(cfg.nIP, cfg.groups)
		if err != nil {
			log.Fatal(err)
		}
		n, err := c.Netlist()
		if err != nil {
			log.Fatal(err)
		}
		opt := core.DefaultOptions()
		opt.Layout.TimeLimit = 120 * time.Second
		res, err := core.Synthesize(n, opt)
		if err != nil {
			log.Fatalf("%s: %v", c.ID, err)
		}
		m := res.Metrics()
		fmt.Printf("%6d %6d %8d %6.1f x %-6.1f %10.1f %8d %10v\n",
			cfg.nIP, m.Units, cfg.groups, m.WidthMM, m.HeightMM,
			m.FlowMM, m.CtrlInlets, m.Runtime.Round(time.Millisecond))
	}
	fmt.Println("\ncontrol inlets grow logarithmically with the channel count,")
	fmt.Println("the property that makes large-scale designs addressable (Section 2.2).")
}
