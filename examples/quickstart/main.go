// Quickstart: synthesize a minimal mLSI chip from a netlist description
// and export it, exercising the whole Columba S flow (Figure 5) through
// the public core API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"columbas/internal/core"
)

// A two-unit application: a rotary mixer feeding a reaction chamber, with
// one fluid inlet and one outlet.
const app = `
design quickstart
muxes 1

unit mix1 mixer
unit incubate chamber

connect in:sample  mix1
connect mix1       incubate
connect incubate   out:waste
`

func main() {
	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = 10 * time.Second

	res, err := core.SynthesizeSource(app, opt)
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics()
	fmt.Printf("design %q synthesized in %v\n", m.Name, m.Runtime.Round(time.Millisecond))
	fmt.Printf("  chip:            %.2f x %.2f mm\n", m.WidthMM, m.HeightMM)
	fmt.Printf("  flow channels:   %.2f mm\n", m.FlowMM)
	fmt.Printf("  control inlets:  %d (multiplexed: %d channels)\n",
		m.CtrlInlets, res.Design.MuxBottom.N)
	fmt.Printf("  fluid ports:     %d\n", m.FluidPorts)
	fmt.Printf("  DRC:             %d rules, %d violations\n",
		res.DRC.Checked, len(res.DRC.Violations))

	// Export for inspection (SVG) and fabrication (AutoCAD script).
	for _, out := range []struct {
		path  string
		write func(*os.File) error
	}{
		{"quickstart.svg", func(f *os.File) error { return res.WriteSVG(f) }},
		{"quickstart.scr", func(f *os.File) error { return res.WriteSCR(f) }},
	} {
		f, err := os.Create(out.path)
		if err != nil {
			log.Fatal(err)
		}
		if err := out.write(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", out.path)
	}
}
