// Modules renders the Columba S module model library (Figure 3): the
// three mixer configurations (plain, sieve, cell-trap), the reaction
// chamber, and a switch with junctions on both sides, each written as an
// SVG panel in the style of the paper's figure.
//
// Run with:
//
//	go run ./examples/modules
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"columbas/internal/geom"
	"columbas/internal/module"
	"columbas/internal/netlist"
)

func main() {
	panels := []struct {
		file  string
		build func() (*module.Instance, error)
		note  string
	}{
		{"module_mixer_plain.svg", func() (*module.Instance, error) {
			return module.Instantiate("mixer", netlist.Unit{Name: "m", Type: netlist.Mixer}, geom.Pt{}, module.FromBottom)
		}, "Figure 3(b): plain rotary mixer, control from the bottom"},
		{"module_mixer_sieve.svg", func() (*module.Instance, error) {
			return module.Instantiate("mixer", netlist.Unit{Name: "m", Type: netlist.Mixer, Opt: netlist.Sieve}, geom.Pt{}, module.FromTop)
		}, "Figure 3(c): sieve-valve mixer (washing), control from the top"},
		{"module_mixer_celltrap.svg", func() (*module.Instance, error) {
			return module.Instantiate("mixer", netlist.Unit{Name: "m", Type: netlist.Mixer, Opt: netlist.CellTrap}, geom.Pt{}, module.FromBoth)
		}, "Figure 3(d): cell-trap mixer (separation valves), control from both sides"},
		{"module_chamber.svg", func() (*module.Instance, error) {
			return module.Instantiate("chamber", netlist.Unit{Name: "c", Type: netlist.Chamber}, geom.Pt{}, module.FromBottom)
		}, "reaction chamber"},
		{"module_switch.svg", func() (*module.Instance, error) {
			sw, err := module.InstantiateSwitch("switch", 5, geom.Pt{}, 2400, module.FromBottom)
			if err != nil {
				return nil, err
			}
			// Junctions entering from both sides, as in Figure 3(e)/(f).
			sw.SetJunctionSide(0, true)
			sw.SetJunctionSide(1, false)
			sw.SetJunctionSide(2, true)
			sw.SetJunctionSide(3, false)
			sw.SetJunctionSide(4, true)
			return sw, nil
		}, "Figure 3(e): switch with 5 junctions, spine extensible vertically"},
	}
	for _, p := range panels {
		in, err := p.build()
		if err != nil {
			log.Fatal(err)
		}
		if err := writePanel(p.file, in); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %s\n", p.file, p.note)
		fmt.Printf("  box %.1f x %.1f mm, %d control line(s), %d valve(s)\n",
			in.Box.W()/1000, in.Box.H()/1000, len(in.Lines), len(in.Valves()))
	}
}

// writePanel renders one module instance as a standalone SVG.
func writePanel(path string, in *module.Instance) error {
	const scale = 0.1
	pad := 4 * module.D
	box := in.Box
	w := (box.W() + 2*pad) * scale
	h := (box.H() + 2*pad) * scale
	x := func(v float64) float64 { return (v - box.XL + pad) * scale }
	y := func(v float64) float64 { return (box.YT + pad - v) * scale }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%.1f" height="%.1f" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#999"/>`+"\n",
		x(box.XL), y(box.YT), box.W()*scale, box.H()*scale)
	for _, s := range in.Flow {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#1e66c8" stroke-width="%.1f"/>`+"\n",
			x(s.A.X), y(s.A.Y), x(s.B.X), y(s.B.Y), module.ChannelW*scale)
	}
	for _, l := range in.Lines {
		// Control line drawn to the module boundary it exits through.
		yEnd := box.YB
		if l.Access == module.FromTop {
			yEnd = box.YT
		}
		yStart := l.Valves[0].At.Y
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#2e8b57" stroke-width="%.1f"/>`+"\n",
			x(l.X), y(yStart), x(l.X), y(yEnd), module.ChannelW*scale)
	}
	colors := map[module.ValveKind]string{
		module.ValveRegular:    "#e07020",
		module.ValvePump:       "#8040c0",
		module.ValveSieve:      "#107040",
		module.ValveSeparation: "#c02060",
	}
	for _, v := range in.Valves() {
		s := module.ValveSize * scale / 2
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
			x(v.At.X)-s, y(v.At.Y)-s, 2*s, 2*s, colors[v.Kind])
	}
	b.WriteString("</svg>\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
