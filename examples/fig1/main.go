// Fig1 reproduces the paper's Figure 1 as a pair of renderings: the
// kinase-activity application [17] synthesized by (a) the Columba 2.0
// baseline and (b) Columba S, with the paper's three comparison metrics
// (run time, inlets, flow-channel length) printed side by side.
//
// Run with:
//
//	go run ./examples/fig1
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"columbas/internal/cases"
	"columbas/internal/columba2"
	"columbas/internal/core"
	"columbas/internal/planar"
)

func main() {
	c, err := cases.Get("kinase21")
	if err != nil {
		log.Fatal(err)
	}
	n, err := c.Netlist()
	if err != nil {
		log.Fatal(err)
	}

	// (a) Columba 2.0 baseline.
	pr, err := planar.Planarize(n)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	base, err := columba2.Synthesize(pr, columba2.Options{
		TimeLimit: 20 * time.Second, StallLimit: 60, Gap: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	baseTime := time.Since(t0)
	if err := writeBaselineSVG("fig1_columba2.svg", base); err != nil {
		log.Fatal(err)
	}

	// (b) Columba S.
	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = 30 * time.Second
	res, err := core.Synthesize(n, opt)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("fig1_columbas.svg")
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteSVG(f); err != nil {
		log.Fatal(err)
	}
	f.Close()

	m := res.Metrics()
	fmt.Println("Figure 1 — kinase-activity design, Columba 2.0 (a) vs Columba S (b)")
	fmt.Println("paper:   (a) 56 s, 22 inlets, 58.9 mm   (b) 0.9 s, 18 inlets, 39.85 mm")
	fmt.Printf("ours:    (a) %.1f s, %d ctrl inlets, %.1f mm   (b) %.1f s, %d ctrl inlets, %.1f mm\n",
		baseTime.Seconds(), base.CtrlInlets, base.FlowLength/1000,
		m.Runtime.Seconds(), m.CtrlInlets, m.FlowMM)
	fmt.Println("wrote fig1_columba2.svg and fig1_columbas.svg")
}

// writeBaselineSVG renders the 2.0 grid design: unit boxes and Manhattan
// route hints (the baseline keeps no detailed channel geometry — its
// routes are the model's detour segments, drawn here as centre-to-centre
// elbows).
func writeBaselineSVG(path string, r *columba2.Result) error {
	const scale = 0.1
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f">`+"\n",
		r.W*scale, r.H*scale)
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%.1f" height="%.1f" fill="white" stroke="black"/>`+"\n",
		r.W*scale, r.H*scale)
	y := func(v float64) float64 { return (r.H - v) * scale }
	for _, u := range r.Units {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#eeeeee" stroke="#444"/>`+"\n",
			u.X*scale, y(u.Y+u.H), u.W*scale, u.H*scale)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="8" fill="#333">%s</text>`+"\n",
			u.X*scale+1, y(u.Y+u.H)+9, u.Name)
	}
	// Elbow routes between consecutive units of each lane (illustrative).
	for i := 0; i+1 < len(r.Units); i++ {
		a, c := r.Units[i], r.Units[i+1]
		ax, ay := (a.X+a.W/2)*scale, y(a.Y+a.H/2)
		cx, cy := (c.X+c.W/2)*scale, y(c.Y+c.H/2)
		fmt.Fprintf(&b, `<polyline points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="none" stroke="#1e66c8" stroke-width="1"/>`+"\n",
			ax, ay, cx, ay, cx, cy)
	}
	b.WriteString("</svg>\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
