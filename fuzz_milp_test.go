// Fuzz harness for the parallel MILP solver: derive a small random model
// from the fuzz input, solve it with the exact sequential algorithm
// (Workers=1) and with a worker pool (Workers=4), and require both to
// agree on status and — when an optimum is proven — on the objective.
// This is the randomized counterpart of internal/milp's equivalence
// suite, meant to run continuously:
//
//	go test -run '^$' -fuzz FuzzMILPParallel -fuzztime 30s .
//
// (make fuzz-smoke wires the same smoke run into the verify loop.)
package columbas

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"columbas/internal/milp"
)

// fuzzModel deterministically derives a small MILP from the seed: up to
// 5 binaries, up to 2 bounded continuous variables, up to 4 rows, and an
// optional marked disjunction — the constraint shapes of the paper's
// physical-synthesis models.
func fuzzModel(seed int64) func() *milp.Model {
	return func() *milp.Model {
		rng := rand.New(rand.NewSource(seed))
		nb := 1 + rng.Intn(5)
		nc := rng.Intn(3)
		nr := 1 + rng.Intn(4)
		m := milp.NewModel()
		var bs, cs []milp.VarID
		for i := 0; i < nb; i++ {
			bs = append(bs, m.Binary("b"))
		}
		for i := 0; i < nc; i++ {
			cs = append(cs, m.Var("x", 0, float64(1+rng.Intn(5))))
		}
		for r := 0; r < nr; r++ {
			e := milp.NewExpr()
			for _, b := range bs {
				e.Add(b, float64(rng.Intn(7)-3))
			}
			for _, c := range cs {
				e.Add(c, float64(rng.Intn(5)-2))
			}
			rhs := float64(rng.Intn(9) - 3)
			switch rng.Intn(3) {
			case 0:
				m.AddGE(e, rhs)
			case 1:
				m.AddLE(e, rhs)
			default:
				// Loose two-sided band keeps EQ rows satisfiable often
				// enough to exercise the feasible paths too.
				m.AddLE(e, rhs+4)
				m.AddGE(e, rhs-4)
			}
		}
		if nb >= 2 && rng.Intn(3) == 0 {
			m.MarkDisjunction([]milp.VarID{bs[0], bs[1]})
		}
		obj := milp.NewExpr()
		for _, b := range bs {
			obj.Add(b, float64(rng.Intn(11)-5))
		}
		for _, c := range cs {
			obj.Add(c, float64(rng.Intn(7)-3)/2)
		}
		m.Minimize(obj)
		return m
	}
}

func FuzzMILPParallel(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 1234, -99, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		build := fuzzModel(seed)
		// A safety-net time limit only: these models solve in well under a
		// millisecond, and a limit that actually fired would surface as a
		// status mismatch below.
		const budget = 30 * time.Second
		seq, err := build().Solve(milp.Options{Workers: 1, TimeLimit: budget})
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}
		par, err := build().Solve(milp.Options{Workers: 4, TimeLimit: budget})
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if seq.Status != par.Status {
			t.Fatalf("seed %d: sequential %v vs parallel %v", seed, seq.Status, par.Status)
		}
		// Warm-start conservation: every LP solve is either a basis
		// re-entry or a cold two-phase solve, whatever the scheduling.
		for _, r := range []*milp.Result{seq, par} {
			st := r.Stats
			if st.LPSolves != st.WarmStarts+st.ColdSolves {
				t.Fatalf("seed %d workers=%d: LPSolves %d != WarmStarts %d + ColdSolves %d",
					seed, st.Workers, st.LPSolves, st.WarmStarts, st.ColdSolves)
			}
			if st.SimplexPivots != st.WarmPivots+st.ColdPivots {
				t.Fatalf("seed %d workers=%d: SimplexPivots %d != WarmPivots %d + ColdPivots %d",
					seed, st.Workers, st.SimplexPivots, st.WarmPivots, st.ColdPivots)
			}
		}
		// The warm kernel must also agree with the cold-only ablation.
		cold, err := build().Solve(milp.Options{Workers: 1, TimeLimit: budget, NoWarmStart: true})
		if err != nil {
			t.Fatalf("seed %d cold: %v", seed, err)
		}
		if seq.Status != cold.Status {
			t.Fatalf("seed %d: warm %v vs cold %v", seed, seq.Status, cold.Status)
		}
		if seq.Status == milp.Optimal && math.Abs(seq.Obj-cold.Obj) > 1e-6 {
			t.Fatalf("seed %d: warm obj %v vs cold obj %v", seed, seq.Obj, cold.Obj)
		}
		if seq.Status == milp.Optimal {
			if math.Abs(seq.Obj-par.Obj) > 1e-6 {
				t.Fatalf("seed %d: sequential obj %v vs parallel obj %v", seed, seq.Obj, par.Obj)
			}
			// Whatever assignment the pool returned must be feasible on a
			// fresh model at the reported objective.
			if r, err := build().Solve(milp.Options{Start: par.X, NodeLimit: 1}); err != nil {
				t.Fatalf("seed %d revalidate: %v", seed, err)
			} else if r.Obj > par.Obj+1e-6 {
				t.Fatalf("seed %d: parallel assignment rejected as incumbent (%v vs %v)", seed, r.Obj, par.Obj)
			}
		}
	})
}
