// System-level checks of the observability layer: the example netlist on
// disk stays in sync with the cases corpus, and a real end-to-end
// synthesis produces a trace whose JSON form round-trips through the
// columbas-trace/v1 schema structs (docs/metrics.md).
package columbas

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"

	"columbas/internal/cases"
	"columbas/internal/core"
	"columbas/internal/obs"
)

// TestExampleNetlistMatchesCorpus pins examples/chip/chip.netlist (the
// file the README's worked example feeds to columbas -stats) to the
// chip9 case source, so README instructions and tests exercise the same
// design.
func TestExampleNetlistMatchesCorpus(t *testing.T) {
	c, err := cases.Get("chip9")
	if err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile("examples/chip/chip.netlist")
	if err != nil {
		t.Fatal(err)
	}
	if string(disk) != c.Source {
		t.Error("examples/chip/chip.netlist has drifted from the chip9 case source; regenerate it from internal/cases")
	}
}

// TestSystemTraceRoundTrip synthesizes the running example with tracing
// on, serializes the trace and parses it back through the schema structs:
// the pipeline phases the paper's Figure 5 names must all appear, the
// layout phase must carry the milp_* solver counters, and the document
// must be a fixed point of the schema round trip.
func TestSystemTraceRoundTrip(t *testing.T) {
	c, err := cases.Get("chip9")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New("system")
	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = 10 * time.Second
	opt.Layout.StallLimit = 40
	opt.Trace = tr
	if _, err := core.SynthesizeSource(c.Source, opt); err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc obs.TraceJSON
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace does not parse back into obs.TraceJSON: %v", err)
	}
	if doc.Schema != obs.SchemaVersion {
		t.Fatalf("schema = %q, want %q", doc.Schema, obs.SchemaVersion)
	}
	if doc.Name != "chip9" {
		t.Errorf("trace name = %q, want the design name", doc.Name)
	}

	byName := map[string]obs.SpanJSON{}
	for _, sp := range doc.Spans {
		byName[sp.Name] = sp
	}
	for _, phase := range []string{"parse", "planarize", "layout", "validate", "drc"} {
		if _, ok := byName[phase]; !ok {
			t.Errorf("trace missing pipeline phase %q", phase)
		}
	}
	layout := byName["layout"]
	for _, k := range []string{"milp_nodes", "milp_lp_solves", "milp_simplex_pivots", "milp_workers"} {
		if _, ok := layout.Counters[k]; !ok {
			t.Errorf("layout phase missing counter %q (have %v)", k, layout.Counters)
		}
	}
	var muxChild bool
	for _, sp := range byName["validate"].Spans {
		if sp.Name == "mux synthesis" {
			muxChild = true
		}
	}
	if !muxChild {
		t.Error("validate phase missing the mux synthesis sub-span")
	}

	again, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(again, '\n'), buf.Bytes()) {
		t.Error("trace is not a fixed point of the schema round trip")
	}
}
