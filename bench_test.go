// Benchmark harness regenerating the paper's evaluation (Section 4):
// one benchmark per Table 1 row/variant and one per figure. Absolute
// numbers differ from the paper (different machine; pure-Go MILP solver
// instead of Gurobi — see DESIGN.md); each benchmark reports the design
// metrics the paper tabulates via b.ReportMetric, and EXPERIMENTS.md
// records the paper-vs-measured comparison.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package columbas

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"columbas/internal/bench"
	"columbas/internal/cases"
	"columbas/internal/columba2"
	"columbas/internal/core"
	"columbas/internal/geom"
	"columbas/internal/layout"
	"columbas/internal/milp"
	"columbas/internal/module"
	"columbas/internal/mux"
	"columbas/internal/netlist"
	"columbas/internal/planar"
	"columbas/internal/sim"
)

// benchCfg keeps the whole suite's wall-clock bounded while leaving each
// model enough budget to terminate by stall rather than by force.
func benchCfg() bench.Config {
	return bench.Config{
		STime:      30 * time.Second,
		BTime:      5 * time.Second,
		StallLimit: 60,
		DRC:        true,
	}
}

// reportS attaches the Table 1 columns to a Columba S benchmark run.
func reportS(b *testing.B, run *bench.SRun) {
	b.Helper()
	m := run.Metrics
	b.ReportMetric(m.WidthMM*m.HeightMM, "area_mm2")
	b.ReportMetric(m.FlowMM, "Lf_mm")
	b.ReportMetric(float64(m.CtrlInlets), "c_in")
	if !run.DRCOK {
		b.Fatal("design not DRC-clean")
	}
}

func benchS(b *testing.B, id string, muxes int) {
	c, err := cases.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var last *bench.SRun
	for i := 0; i < b.N; i++ {
		last, err = bench.RunS(c, muxes, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportS(b, last)
}

func benchBaseline(b *testing.B, id string) {
	c, err := cases.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var last *bench.BRun
	for i := 0; i < b.N; i++ {
		last, err = bench.RunBaseline(c, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if last.TooLarge {
		// The paper's "\" cells: Columba 2.0 cannot solve chip64/chip128.
		b.ReportMetric(1, "unsolvable")
		return
	}
	b.ReportMetric(last.WidthMM*last.HeightMM, "area_mm2")
	b.ReportMetric(last.FlowMM, "Lf_mm")
	b.ReportMetric(float64(last.CtrlInlets), "c_in")
}

// ── Table 1 ──────────────────────────────────────────────────────────

func BenchmarkTable1_NAP6_Baseline(b *testing.B)  { benchBaseline(b, "nap6") }
func BenchmarkTable1_NAP6_S1MUX(b *testing.B)     { benchS(b, "nap6", 1) }
func BenchmarkTable1_NAP6_S2MUX(b *testing.B)     { benchS(b, "nap6", 2) }
func BenchmarkTable1_ChIP9_Baseline(b *testing.B) { benchBaseline(b, "chip9") }
func BenchmarkTable1_ChIP9_S1MUX(b *testing.B)    { benchS(b, "chip9", 1) }
func BenchmarkTable1_ChIP9_S2MUX(b *testing.B)    { benchS(b, "chip9", 2) }
func BenchmarkTable1_MRNA8_Baseline(b *testing.B) { benchBaseline(b, "mrna8") }
func BenchmarkTable1_MRNA8_S1MUX(b *testing.B)    { benchS(b, "mrna8", 1) }
func BenchmarkTable1_MRNA8_S2MUX(b *testing.B)    { benchS(b, "mrna8", 2) }

func BenchmarkTable1_Kinase21_Baseline(b *testing.B) { benchBaseline(b, "kinase21") }
func BenchmarkTable1_Kinase21_S1MUX(b *testing.B)    { benchS(b, "kinase21", 1) }
func BenchmarkTable1_Kinase21_S2MUX(b *testing.B)    { benchS(b, "kinase21", 2) }

func BenchmarkTable1_ChIP64_Baseline(b *testing.B)  { benchBaseline(b, "chip64") }
func BenchmarkTable1_ChIP64_S1MUX(b *testing.B)     { benchS(b, "chip64", 1) }
func BenchmarkTable1_ChIP64_S2MUX(b *testing.B)     { benchS(b, "chip64", 2) }
func BenchmarkTable1_ChIP128_Baseline(b *testing.B) { benchBaseline(b, "chip128") }
func BenchmarkTable1_ChIP128_S1MUX(b *testing.B)    { benchS(b, "chip128", 1) }
func BenchmarkTable1_ChIP128_S2MUX(b *testing.B)    { benchS(b, "chip128", 2) }

// ── Figure 1: kinase-activity design, 2.0 vs S ───────────────────────
// Paper: run time 56 s vs 0.9 s; inlets 22 vs 18; flow 58.9 vs 39.85 mm.
func BenchmarkFigure1_KinaseComparison(b *testing.B) {
	c, err := cases.Get("kinase21")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		base, err := bench.RunBaseline(c, cfg)
		if err != nil {
			b.Fatal(err)
		}
		s, err := bench.RunS(c, 1, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(base.Runtime.Seconds()/s.Metrics.Runtime.Seconds(), "speedup")
			b.ReportMetric(s.Metrics.FlowMM/base.FlowMM, "flow_ratio")
			b.ReportMetric(float64(s.Metrics.CtrlInlets)/float64(base.CtrlInlets), "inlet_ratio")
		}
	}
}

// ── Figure 2: architectural framework (straight routing discipline) ──
func BenchmarkFigure2_Framework(b *testing.B) {
	n, err := netlist.ParseString(cases.MRNA8().Source)
	if err != nil {
		b.Fatal(err)
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		b.Fatal(err)
	}
	opt := layout.DefaultOptions()
	opt.TimeLimit = 15 * time.Second
	opt.StallLimit = 60
	for i := 0; i < b.N; i++ {
		p, err := layout.Generate(pr, opt)
		if err != nil {
			b.Fatal(err)
		}
		// Every control rect reaches a MUX boundary, every flow rect a
		// horizontal run: checked structurally by kind counts.
		var flows, ctrls int
		for _, r := range p.Rects {
			switch r.Kind {
			case layout.RFlow:
				flows++
			case layout.RCtrl:
				ctrls++
			}
		}
		if flows == 0 || ctrls == 0 {
			b.Fatal("framework rects missing")
		}
	}
}

// ── Figure 3: module model library ───────────────────────────────────
func BenchmarkFigure3_ModuleLibrary(b *testing.B) {
	units := []netlist.Unit{
		{Name: "m", Type: netlist.Mixer},
		{Name: "ms", Type: netlist.Mixer, Opt: netlist.Sieve},
		{Name: "mc", Type: netlist.Mixer, Opt: netlist.CellTrap},
		{Name: "c", Type: netlist.Chamber},
	}
	for i := 0; i < b.N; i++ {
		for _, u := range units {
			if _, err := module.Instantiate(u.Name, u, geom.Pt{}, module.FromBottom); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := module.InstantiateSwitch("s", 5, geom.Pt{}, 2000, module.FromBottom); err != nil {
			b.Fatal(err)
		}
	}
}

// ── Figure 4: 15-channel multiplexer addressing ──────────────────────
func BenchmarkFigure4_MuxAddressing(b *testing.B) {
	xs := make([]float64, 15)
	for i := range xs {
		xs[i] = float64(i) * 200
	}
	m, err := mux.Build(xs, true, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < m.N; c++ {
			s, err := m.Select(c)
			if err != nil {
				b.Fatal(err)
			}
			open := m.Open(s)
			if len(open) != 1 || open[0] != c {
				b.Fatalf("address %d opens %v", c, open)
			}
		}
	}
	b.ReportMetric(float64(m.Inlets()), "inlets")
}

// ── Figure 5: the overall flow on a minimal design ───────────────────
func BenchmarkFigure5_FullFlow(b *testing.B) {
	const src = `
design flow
unit m1 mixer
unit c1 chamber
connect in:s m1
connect m1 c1
connect c1 out:w
`
	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = 10 * time.Second
	opt.Layout.StallLimit = 60
	for i := 0; i < b.N; i++ {
		if _, err := core.SynthesizeSource(src, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// ── Figure 6: parallel merging and the generation-phase rectangles ───
func BenchmarkFigure6_LayoutGeneration(b *testing.B) {
	n, err := netlist.ParseString(cases.ChIP64().Source)
	if err != nil {
		b.Fatal(err)
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		b.Fatal(err)
	}
	opt := layout.DefaultOptions()
	opt.TimeLimit = 60 * time.Second
	var plan *layout.Plan
	for i := 0; i < b.N; i++ {
		plan, err = layout.Generate(pr, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Merging: 129 units collapse into ~10 placeable rectangles.
	placeables := 0
	for _, r := range plan.Rects {
		if r.Placeable() {
			placeables++
		}
	}
	b.ReportMetric(float64(placeables), "merged_rects")
	b.ReportMetric(float64(plan.Stats.Rows), "model_rows")
}

// ── Figure 7: the ChIP production flow ───────────────────────────────
func BenchmarkFigure7_ChIPFlow(b *testing.B) {
	c, err := cases.Get("chip9")
	if err != nil {
		b.Fatal(err)
	}
	var last *bench.SRun
	for i := 0; i < b.N; i++ {
		last, err = bench.RunS(c, 1, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportS(b, last)
}

// ── Figure 8: multiplexing function on the mRNA-isolation design ─────
func BenchmarkFigure8_MuxOnChip(b *testing.B) {
	c, err := cases.Get("mrna8")
	if err != nil {
		b.Fatal(err)
	}
	n, err := c.Netlist()
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = 15 * time.Second
	opt.Layout.StallLimit = 60
	res, err := core.Synthesize(n, opt)
	if err != nil {
		b.Fatal(err)
	}
	in, err := sim.InletPoint(res.Design, "cells1")
	if err != nil {
		b.Fatal(err)
	}
	out, err := sim.InletPoint(res.Design, "cdna1")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl := sim.NewController(res.Design)
		if sim := ctl.BuildFlowGraph(); !sim.Reachable(in, out) {
			b.Fatal("open path missing")
		}
		if err := ctl.Set("m1.in", true); err != nil {
			b.Fatal(err)
		}
		if g := ctl.BuildFlowGraph(); g.Reachable(in, out) {
			b.Fatal("closed valve did not block")
		}
	}
}

// ── Solver parallelism: sequential vs worker-pool branch and bound ────
// The same Table-1-scale placement model (constraints (1)-(5), five
// merged rectangles, ten four-way disjunction groups) solved to proven
// optimality with one worker and with GOMAXPROCS workers. EXPERIMENTS.md
// records the measured pair; on a single-core host the two are expected
// to sit within noise of each other.

func benchSolveWorkers(b *testing.B, workers int) {
	const wantObj = 2600 // proven optimum of PlacementModel(5, 11)
	var nodes int
	for i := 0; i < b.N; i++ {
		m := bench.PlacementModel(5, 11)
		r, err := m.Solve(milp.Options{Workers: workers, TimeLimit: 5 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		if r.Status != milp.Optimal || r.Obj < wantObj-1e-6 || r.Obj > wantObj+1e-6 {
			b.Fatalf("status=%v obj=%v, want optimal %v", r.Status, r.Obj, wantObj)
		}
		nodes = r.Nodes
	}
	b.ReportMetric(float64(nodes), "nodes")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "maxprocs")
}

func BenchmarkSolveSequential(b *testing.B) { benchSolveWorkers(b, 1) }
func BenchmarkSolveParallel(b *testing.B)   { benchSolveWorkers(b, -1) }

// Guard: the baseline really is unsolvable at scale with the same solver.
func TestBaselineFrontier(t *testing.T) {
	pr := mustPlanarize(t, cases.ChIP64())
	_, err := columba2.Synthesize(pr, columba2.Options{SkipMILP: true})
	if !errors.Is(err, columba2.ErrTooLarge) {
		t.Fatalf("chip64 baseline err = %v, want ErrTooLarge", err)
	}
}

func mustPlanarize(t *testing.T, c cases.Case) *planar.Result {
	t.Helper()
	n, err := c.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// ── Scalability sweep: the headline claim as a benchmark series ───────
// One benchmark per ChIP size; together they trace synthesis time and
// inlet growth from 17 to 257 functional units (examples/scaling prints
// the same series interactively).
func benchScaling(b *testing.B, nIP, groups int) {
	c, err := cases.ChIPScale(nIP, groups)
	if err != nil {
		b.Fatal(err)
	}
	n, err := c.Netlist()
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = 120 * time.Second
	var m core.Metrics
	for i := 0; i < b.N; i++ {
		res, err := core.Synthesize(n, opt)
		if err != nil {
			b.Fatal(err)
		}
		m = res.Metrics()
	}
	b.ReportMetric(float64(m.Units), "units")
	b.ReportMetric(float64(m.CtrlInlets), "c_in")
	b.ReportMetric(m.WidthMM*m.HeightMM, "area_mm2")
}

func BenchmarkScaling_ChIP8(b *testing.B)   { benchScaling(b, 8, 2) }
func BenchmarkScaling_ChIP16(b *testing.B)  { benchScaling(b, 16, 4) }
func BenchmarkScaling_ChIP32(b *testing.B)  { benchScaling(b, 32, 4) }
func BenchmarkScaling_ChIP64(b *testing.B)  { benchScaling(b, 64, 8) }
func BenchmarkScaling_ChIP128(b *testing.B) { benchScaling(b, 128, 16) }
