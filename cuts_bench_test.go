// Search-tree reduction measurement harness: the same end-to-end
// synthesis (parse → planarize → layout MILP → validate) run with the
// tree reductions on (node presolve, root Gomory + cover cuts,
// pseudocost branching — the defaults) and off (-no-cuts -no-presolve
// -branching=mostfrac, the seed solver's behaviour), on the chip9 /
// chip16 cases. The reported custom metrics are the before/after numbers
// recorded in EXPERIMENTS.md:
//
//	make bench-cuts
//
// Workers is pinned to 1 so node counts are deterministic — the frontier
// order is identical between repeated runs; only the reductions differ
// between the two cells.
package columbas

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"columbas/internal/cases"
	"columbas/internal/core"
	"columbas/internal/milp"
)

// cutsOpts configures one cell of the reduction ablation. The stall
// budget is wide and the gap tight so the searches run to (near)
// optimality instead of stopping at the same stall fence — node counts
// then measure tree size, not budget.
func cutsOpts(ablate bool) core.Options {
	o := core.DefaultOptions()
	o.Layout.TimeLimit = 60 * time.Second
	o.Layout.StallLimit = 400
	o.Layout.Gap = 0.01
	o.Layout.Workers = 1
	o.Layout.NoCuts = ablate
	o.Layout.NoPresolve = ablate
	if ablate {
		o.Layout.Branching = milp.BranchMostFractional
	}
	return o
}

func runCutsCell(t testing.TB, caseID string, ablate bool) *core.Result {
	c, err := cases.Get(caseID)
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(n, cutsOpts(ablate))
	if err != nil {
		t.Fatal(err)
	}
	if !res.DRC.Clean() {
		t.Fatalf("%s: design not DRC-clean", caseID)
	}
	return res
}

func benchCuts(b *testing.B, caseID string, ablate bool) {
	var st milp.SearchStats
	for i := 0; i < b.N; i++ {
		st = runCutsCell(b, caseID, ablate).Plan.Stats.Search
	}
	b.ReportMetric(float64(st.NodesExplored), "nodes")
	b.ReportMetric(float64(st.SimplexPivots), "pivots")
	b.ReportMetric(float64(st.LPSolves), "lp_solves")
	b.ReportMetric(float64(st.CutsAdded), "cuts_added")
	b.ReportMetric(float64(st.BoundsTightened), "bounds_tightened")
	b.ReportMetric(float64(st.NodesPresolved), "nodes_presolved")
}

func BenchmarkCutsPresolve(b *testing.B) {
	for _, id := range []string{"chip9", "chip16"} {
		for _, mode := range []struct {
			name   string
			ablate bool
		}{{"on", false}, {"off", true}} {
			b.Run(fmt.Sprintf("%s/%s", id, mode.name), func(b *testing.B) {
				benchCuts(b, id, mode.ablate)
			})
		}
	}
}

// TestCutPresolveNodeReductionChip16 pins the acceptance criterion of
// the search-tree reduction layer: across the chip9 + chip16 cases, node
// presolve, root cuts and pseudocost branching together must cut the
// explored-node total by at least 30% against the full ablation at an
// identical search configuration (Workers=1), while producing
// byte-identical layouts. Per case, the reductions must never inflate
// the tree (a small slack absorbs tie-break noise on stall-terminated
// runs — chip9's tree is dominated by k-way group branches that root
// cuts cannot prune, so its gain is modest; chip16's relaxation goes
// near-integral after cuts and carries the aggregate). Mirrors
// TestWarmStartPivotReductionChip16; skipped in -short mode (four full
// mid-size syntheses).
func TestCutPresolveNodeReductionChip16(t *testing.T) {
	if testing.Short() {
		t.Skip("node-reduction measurement skipped in -short mode")
	}
	var onTotal, offTotal int64
	for _, id := range []string{"chip9", "chip16"} {
		on := runCutsCell(t, id, false)
		off := runCutsCell(t, id, true)
		son, soff := on.Plan.Stats, off.Plan.Stats
		if d := son.Obj - soff.Obj; d > 1e-6 || d < -1e-6 {
			t.Errorf("%s: objective differs: reductions %v vs ablation %v", id, son.Obj, soff.Obj)
		}
		var jon, joff bytes.Buffer
		if err := on.WriteJSON(&jon); err != nil {
			t.Fatal(err)
		}
		if err := off.WriteJSON(&joff); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jon.Bytes(), joff.Bytes()) {
			t.Errorf("%s: layouts differ between reductions and ablation (%d vs %d bytes)",
				id, jon.Len(), joff.Len())
		}
		non, noff := son.Search.NodesExplored, soff.Search.NodesExplored
		t.Logf("%s: nodes on=%d off=%d; cuts=%d rounds=%d bounds_tightened=%d rows_removed=%d nodes_presolved=%d; pivots on=%d off=%d",
			id, non, noff, son.Search.CutsAdded, son.Search.CutRounds,
			son.Search.BoundsTightened, son.Search.RowsRemoved, son.Search.NodesPresolved,
			son.Search.SimplexPivots, soff.Search.SimplexPivots)
		if float64(non) > 1.15*float64(noff)+5 {
			t.Errorf("%s: reductions inflated the tree: %d nodes vs %d ablated", id, non, noff)
		}
		if soff.Search.CutsAdded != 0 || soff.Search.BoundsTightened != 0 || soff.Search.PseudocostBranches != 0 {
			t.Errorf("%s: ablation cell reported reduction work: %+v", id, soff.Search)
		}
		onTotal += non
		offTotal += noff
	}
	if offTotal == 0 {
		t.Fatal("ablation runs explored no nodes")
	}
	reduction := 1 - float64(onTotal)/float64(offTotal)
	t.Logf("chip9+chip16 nodes: ablation=%d reductions=%d (%.1f%% reduction)", offTotal, onTotal, reduction*100)
	if reduction < 0.30 {
		t.Errorf("node reduction %.1f%% < 30%% (ablation=%d reductions=%d)", reduction*100, offTotal, onTotal)
	}
}
