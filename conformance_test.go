package columbas

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"columbas/internal/core"
	"columbas/internal/gen"
	"columbas/internal/lp"
	"columbas/internal/milp"
	"columbas/internal/netlist"
)

// conformanceSeeds is the size of the randomized synthesis sweep: every
// seed's netlist must either be rejected with a typed *core.SynthesisError
// or synthesize into a design with zero DRC violations. Nothing in
// between — an untyped error or a dirty design is a pipeline bug.
const conformanceSeeds = 200

func conformanceOpts() core.Options {
	opt := core.DefaultOptions()
	// The property under test is validity (typed rejection or DRC-clean
	// design), not layout quality, so keep the solver budget tight: on
	// timeout the pipeline degrades to the greedy seed layout, which
	// still flows through validation and DRC.
	opt.Layout.TimeLimit = 5 * time.Second
	opt.Layout.StallLimit = 20
	opt.Layout.Gap = 0.25
	// Two solver workers per synthesis; the suite itself fans out, so
	// wider pools would just oversubscribe the machine.
	opt.Layout.Workers = 2
	return opt
}

func TestSynthesisConformance(t *testing.T) {
	seeds := conformanceSeeds
	if testing.Short() {
		seeds = 25
	}
	// Bound the fan-out so -race runs don't oversubscribe the machine:
	// each synthesis already runs a worker pool of its own.
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for seed := int64(0); seed < int64(seeds); seed++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			n := gen.Generate(seed)
			res, err := core.Synthesize(n, conformanceOpts())
			if err != nil {
				var serr *core.SynthesisError
				if !errors.As(err, &serr) {
					t.Errorf("seed %d: untyped synthesis error: %v\n%s", seed, err, n.Format())
				}
				return
			}
			if res.DRC == nil {
				t.Errorf("seed %d: synthesis succeeded without a DRC report", seed)
				return
			}
			if !res.DRC.Clean() {
				t.Errorf("seed %d: %d DRC violation(s); first: %v\n%s",
					seed, len(res.DRC.Violations), res.DRC.Violations[0], n.Format())
			}
		}(seed)
	}
	wg.Wait()
}

// The warm-started and cold solver paths must be interchangeable at the
// pipeline level: same verdict (typed rejection vs clean design) for the
// same netlist.
func TestSynthesisConformanceWarmColdAgree(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		n := gen.Generate(seed)
		warm, warmErr := core.Synthesize(n, conformanceOpts())
		coldOpt := conformanceOpts()
		coldOpt.Layout.NoWarmStart = true
		cold, coldErr := core.Synthesize(n, coldOpt)
		if (warmErr == nil) != (coldErr == nil) {
			t.Errorf("seed %d: warm err=%v, cold err=%v", seed, warmErr, coldErr)
			continue
		}
		if warmErr == nil && (!warm.DRC.Clean() || !cold.DRC.Clean()) {
			t.Errorf("seed %d: DRC disagreement warm=%v cold=%v",
				seed, warm.DRC.Clean(), cold.DRC.Clean())
		}
	}
}

// The delta-aware warm-start pipeline must be invisible at the pipeline
// level: re-synthesizing an edit-sequence chain with each step chaining
// a warm hint from its predecessor reaches the same verdict (typed
// rejection vs clean design) and the same objective, within the
// optimality gap, as solving every step cold under -no-delta. A hint
// that steered the search into excluding the optimum — a poisoned
// incumbent, a stale pair set tightening the model, a corrupt root basis
// — would surface here as a verdict flip or an objective drift no gap
// explains.
func TestSynthesisConformanceDeltaWarmAgree(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	const steps = 5
	// The property under test is verdict parity, and the budget applies to
	// both sides of every step equally, so a tighter budget than the other
	// conformance sweeps keeps the 20×5 matrix affordable without
	// weakening the comparison.
	deltaOpts := func() core.Options {
		opt := conformanceOpts()
		opt.Layout.TimeLimit = 3 * time.Second
		opt.Layout.StallLimit = 12
		return opt
	}
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for seed := int64(0); seed < int64(seeds); seed++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			chain := gen.EditSequence(seed, steps)
			var prev *core.Result
			for i, n := range chain {
				coldOpt := deltaOpts()
				coldOpt.NoDelta = true
				cold, coldErr := core.Synthesize(n, coldOpt)
				// Step 0 has no donor, so the warm side is the cold side by
				// construction — don't pay for the same solve twice.
				warm, warmErr := cold, coldErr
				warmOpt := deltaOpts()
				if prev != nil {
					warmOpt.Warm = prev.WarmHint()
					warm, warmErr = core.Synthesize(n, warmOpt)
				}
				if (warmErr == nil) != (coldErr == nil) {
					t.Errorf("seed %d step %d: warm err=%v, cold err=%v", seed, i, warmErr, coldErr)
					return
				}
				if warmErr != nil {
					var serr *core.SynthesisError
					if !errors.As(warmErr, &serr) {
						t.Errorf("seed %d step %d: untyped synthesis error: %v", seed, i, warmErr)
					}
					prev = nil
					continue
				}
				if warm.DRC.Clean() != cold.DRC.Clean() {
					t.Errorf("seed %d step %d: DRC disagreement warm=%v cold=%v\n%s",
						seed, i, warm.DRC.Clean(), cold.DRC.Clean(), n.Format())
				}
				// When both sides proved optimality, their objectives must
				// agree within the combined gap slack (each stop is within
				// Gap of the true optimum).
				ws, cs := warm.Plan.Stats, cold.Plan.Stats
				if ws.Status == milp.Optimal && cs.Status == milp.Optimal {
					tol := 2*warmOpt.Layout.Gap*math.Max(math.Abs(ws.Obj), math.Abs(cs.Obj)) + 1e-6
					if diff := math.Abs(ws.Obj - cs.Obj); diff > tol {
						t.Errorf("seed %d step %d: objective drift warm=%g cold=%g (tol %g)\n%s",
							seed, i, ws.Obj, cs.Obj, tol, n.Format())
					}
				}
				prev = warm
			}
		}(seed)
	}
	wg.Wait()
}

// The 2×2 cuts × presolve matrix must be interchangeable at the
// pipeline level: for the same netlist, every cell reaches the same
// verdict (typed rejection vs clean design). Objectives may differ —
// the lazy separation loop legitimately takes different trajectories
// when the tree changes shape — but validity never may: a cell whose
// cuts or tightened bounds excluded a feasible layout would surface
// here as a rejection or a dirty design the other cells don't produce.
func TestSynthesisConformanceCutsPresolveAgree(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	type cell struct {
		name               string
		noCuts, noPresolve bool
	}
	cells := []cell{
		{"both", false, false},
		{"nocuts", true, false},
		{"nopresolve", false, true},
		{"neither", true, true},
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		n := gen.Generate(seed)
		var refOK, refClean bool
		for i, c := range cells {
			opt := conformanceOpts()
			opt.Layout.NoCuts = c.noCuts
			opt.Layout.NoPresolve = c.noPresolve
			res, err := core.Synthesize(n, opt)
			if err != nil {
				var serr *core.SynthesisError
				if !errors.As(err, &serr) {
					t.Errorf("seed %d %s: untyped synthesis error: %v", seed, c.name, err)
				}
			}
			ok := err == nil
			clean := ok && res.DRC != nil && res.DRC.Clean()
			if i == 0 {
				refOK, refClean = ok, clean
				continue
			}
			if ok != refOK || clean != refClean {
				t.Errorf("seed %d: cell %s verdict (ok=%v clean=%v) disagrees with %s (ok=%v clean=%v)",
					seed, c.name, ok, clean, cells[0].name, refOK, refClean)
			}
		}
	}
}

// The dense and sparse LP basis engines must be interchangeable at the
// pipeline level: for the same netlist, every kernel mode reaches the
// same verdict (typed rejection vs clean design). Placements may differ
// — the engines take numerically different pivot trajectories — but a
// kernel whose FTRAN/BTRAN algebra drifted from the explicit inverse
// would surface here as a rejection or a dirty design the other modes
// don't produce. A scale-class netlist (gen.Scale) rides along so the
// sparse path is exercised on a model the auto heuristic actually
// routes to it.
func TestSynthesisConformanceKernelsAgree(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	kernels := []lp.Kernel{lp.KernelAuto, lp.KernelDense, lp.KernelSparse}
	check := func(t *testing.T, n *netlist.Netlist) {
		t.Helper()
		var refOK, refClean bool
		for i, k := range kernels {
			opt := conformanceOpts()
			opt.Layout.Kernel = k
			res, err := core.Synthesize(n, opt)
			if err != nil {
				var serr *core.SynthesisError
				if !errors.As(err, &serr) {
					t.Errorf("%s kernel=%v: untyped synthesis error: %v", n.Name, k, err)
				}
			}
			ok := err == nil
			clean := ok && res.DRC != nil && res.DRC.Clean()
			if i == 0 {
				refOK, refClean = ok, clean
				continue
			}
			if ok != refOK || clean != refClean {
				t.Errorf("%s: kernel %v verdict (ok=%v clean=%v) disagrees with %v (ok=%v clean=%v)",
					n.Name, k, ok, clean, kernels[0], refOK, refClean)
			}
		}
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		check(t, gen.Generate(seed))
	}
	check(t, gen.Scale(32, 4).Generate(0))
}

// Every generated netlist and every netlist file shipped in examples/
// must survive a Format → Parse round trip unchanged.
func TestNetlistRoundTrip(t *testing.T) {
	seeds := int64(conformanceSeeds)
	if testing.Short() {
		seeds = 50
	}
	for seed := int64(0); seed < seeds; seed++ {
		n := gen.Generate(seed)
		back, err := netlist.ParseString(n.Format())
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		if !reflect.DeepEqual(n, back) {
			t.Fatalf("seed %d: round trip changed the netlist", seed)
		}
	}

	files, err := filepath.Glob("examples/*/*.netlist")
	if err != nil || len(files) == 0 {
		t.Fatalf("no example netlists found (err=%v)", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		n, err := netlist.ParseString(string(src))
		if err != nil {
			t.Fatalf("%s: parse: %v", f, err)
		}
		back, err := netlist.ParseString(n.Format())
		if err != nil {
			t.Fatalf("%s: reparse: %v", f, err)
		}
		if !reflect.DeepEqual(n, back) {
			t.Fatalf("%s: round trip changed the netlist", f)
		}
	}
}

// Guard against the conformance property degenerating into "everything is
// rejected": a healthy generator + pipeline must synthesize a solid
// majority of random netlists.
func TestConformanceMostlySynthesizable(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling test; skipped in -short")
	}
	const sample = 40
	ok := 0
	for seed := int64(0); seed < sample; seed++ {
		if _, err := core.Synthesize(gen.Generate(seed), conformanceOpts()); err == nil {
			ok++
		}
	}
	if ok < sample/2 {
		t.Fatalf("only %d/%d random netlists synthesized; generator or pipeline regressed", ok, sample)
	}
	t.Logf("%d/%d random netlists synthesized cleanly", ok, sample)
}
