# Standard verify loop for the Columba S reproduction.
#
#   make test         tier-1: build everything, run every test
#   make race         the race detector across the whole module
#   make race-solver  quick race pass over the solver stack only
#   make fuzz-smoke   short parallel-vs-sequential solver fuzz run
#   make verify       vet + race + fuzz smoke (CI gate)
#   make bench-solver the sequential-vs-parallel solver benchmark pair

GO ?= go

.PHONY: build test vet race race-solver fuzz-smoke verify bench-solver bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

race-solver:
	$(GO) test -race -count=1 ./internal/milp/... ./internal/lp/...

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzMILPParallel -fuzztime 15s .

verify: vet race fuzz-smoke

bench-solver:
	$(GO) test -run '^$$' -bench 'BenchmarkSolve(Sequential|Parallel)$$' -benchtime 3x -count=1 .

bench:
	$(GO) test -bench . -benchmem .
