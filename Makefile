# Standard verify loop for the Columba S reproduction.
#
#   make test           tier-1: build everything, run every test
#   make test-short     the fast tier: go test -short ./... (inner-loop sanity)
#   make race           the race detector across the whole module
#   make race-solver    quick race pass over the solver stack only
#   make fuzz-smoke     short solver fuzz runs (parallel-vs-sequential + cut validity + MPS parse)
#   make conformance    full randomized synthesis sweep (200 seeds, no race)
#   make docs-check     every internal package documents itself in a doc.go
#   make serve-check    build the daemon + httptest smoke of the HTTP API under -race
#   make loadtest-smoke short columbaload run against an in-process server (zero shed, well-formed report)
#   make loadtest       the full tail-latency run behind BENCH_serving.json (1000 requests)
#   make milp-check     MPS corpus differential matrix + round-trip + columbamilp CLI goldens
#   make bench-delta-smoke tiny cold-vs-warm delta run (verdict parity + counter identities)
#   make bench-delta    the full delta warm-start measurement behind BENCH_delta.json
#   make verify         vet + race + fuzz smoke + conformance + docs check + serve check + loadtest smoke + delta smoke + milp check (CI gate)
#   make bench-solver   the sequential-vs-parallel solver benchmark pair
#   make bench-warmstart warm vs cold pivot/wall numbers for EXPERIMENTS.md
#   make bench-cuts     tree reductions on vs off: node/pivot numbers for EXPERIMENTS.md
#   make bench-kernel   LP-kernel benchmarks with -benchmem + the zero-alloc gate
#   make bench-scaling  dense-vs-sparse scaling curve chip9 → chip256 (BENCH_scaling.txt)

GO ?= go

.PHONY: build test test-short vet race race-solver fuzz-smoke conformance docs-check serve-check loadtest-smoke loadtest milp-check bench-delta-smoke bench-delta verify bench-solver bench bench-warmstart bench-cuts bench-kernel bench-scaling

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The fast tier for inner-loop development: every package's -short
# subset (the randomized sweeps shrink, the measurement tests skip).
test-short: build
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# The root package runs its randomized synthesis sweep in -short form
# here (25 seeds under the race detector); the full 200-seed sweep runs
# race-free in the conformance target below.
race:
	$(GO) test -race -short .
	$(GO) test -race ./cmd/... ./internal/... ./examples/...

race-solver:
	$(GO) test -race -count=1 ./internal/milp/... ./internal/lp/...

# One go test invocation can drive only one -fuzz target, so the three
# smoke runs are separate lines: the parallel-vs-sequential solver
# property at the root, the cut/presolve validity property (no reduction
# may exclude an integer-feasible point) in internal/milp, and the MPS
# parser property (never panic, typed errors, write→parse→write is a
# byte fixpoint) in internal/mps.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzMILPParallel -fuzztime 15s .
	$(GO) test -run '^$$' -fuzz FuzzCutValidity -fuzztime 15s ./internal/milp/
	$(GO) test -run '^$$' -fuzz FuzzParseMPS -fuzztime 15s ./internal/mps/

# The randomized synthesis conformance property at full width: every one
# of the 200 generator seeds must either be rejected with a typed
# *core.SynthesisError or synthesize into a DRC-clean design. The
# TestSynthesisConformance prefix also pulls in the warm/cold and
# cuts×presolve agreement matrices (solver ablations must never change
# a verdict).
conformance:
	$(GO) test -run 'TestSynthesisConformance|TestNetlistRoundTrip|TestConformanceMostlySynthesizable' -count=1 .

# Three documentation gates:
#   1. every internal package carries its documentation in a doc.go whose
#      comment opens with the canonical "Package <name>" sentence, and no
#      other file duplicates the package comment;
#   2. no relative markdown link in README.md, DESIGN.md, EXPERIMENTS.md
#      or docs/*.md dangles (external http(s) links are not checked);
#   3. every milp.SearchStats counter field is documented by name in
#      docs/metrics.md — an undocumented counter is how the metrics
#      contract silently rots.
docs-check:
	@fail=0; \
	for d in internal/*/; do \
		p=$$(basename $$d); \
		if [ ! -f $$d/doc.go ]; then \
			echo "docs-check: $$d is missing doc.go"; fail=1; continue; \
		fi; \
		if ! grep -q "^// Package $$p " $$d/doc.go; then \
			echo "docs-check: $$d/doc.go lacks a '// Package $$p' comment"; fail=1; \
		fi; \
		dup=$$(grep -l "^// Package $$p " $$d*.go | grep -v doc.go || true); \
		if [ -n "$$dup" ]; then \
			echo "docs-check: package comment duplicated in $$dup"; fail=1; \
		fi; \
	done; \
	if [ ! -f docs/metrics.md ]; then echo "docs-check: docs/metrics.md missing"; fail=1; fi; \
	for f in README.md DESIGN.md EXPERIMENTS.md docs/*.md; do \
		[ -f $$f ] || continue; \
		dir=$$(dirname $$f); \
		for link in $$(grep -o '](\([^)#]*\))' $$f | sed 's/^](//;s/)$$//' | grep -v '^[a-z][a-z]*:' || true); do \
			if [ ! -e "$$dir/$$link" ]; then \
				echo "docs-check: $$f links to missing $$link"; fail=1; \
			fi; \
		done; \
	done; \
	for field in $$(awk '/^type SearchStats struct/,/^}/' internal/milp/stats.go | \
			grep -o '^	[A-Z][A-Za-z0-9]*' | tr -d '\t'); do \
		if ! grep -q "$$field" docs/metrics.md; then \
			echo "docs-check: SearchStats.$$field is not documented in docs/metrics.md"; fail=1; \
		fi; \
	done; \
	exit $$fail

# The synthesis-service gate: both binaries must build and the httptest
# suite (pool fan-in, mid-solve cancellation, cache hits, drain) must
# pass with the race detector on.
serve-check:
	$(GO) build ./cmd/columbasd ./cmd/columbas
	$(GO) test -race -count=1 ./internal/server/...

# The load-harness gate: columbaload must build and a short mixed run
# against an in-process server must settle every request with zero shed
# (the load sits far below capacity) and produce a well-formed
# columbas-load/v1 report.
loadtest-smoke:
	$(GO) build ./cmd/columbaload
	$(GO) test -race -count=1 -run TestLoadSmoke ./internal/bench/

# The full tail-latency run: 1000 concurrent mixed hit/miss/cancel
# requests against an in-process server. The report is the
# BENCH_serving.json artifact quoted in EXPERIMENTS.md.
loadtest:
	$(GO) run ./cmd/columbaload -n 1000 -c 64 -o BENCH_serving.json

# The general-MILP ingestion gate: the corpus differential matrix (every
# instance keeps its golden status/objective across presolve × cuts ×
# kernel × branching), the write→parse→write round-trip, and the
# columbamilp CLI's golden/error-contract tests.
milp-check:
	$(GO) build ./cmd/columbamilp
	$(GO) test -count=1 ./internal/mps/
	$(GO) test -count=1 ./cmd/columbamilp/

# The delta warm-start gate: a tiny edit chain and weight sweep solved
# cold and delta-warm must agree on every verdict and respect the
# milp_delta_* counter identities (docs/metrics.md).
bench-delta-smoke:
	$(GO) build ./cmd/columbadelta
	$(GO) test -count=1 -run TestDeltaSmoke ./internal/bench/

# The full delta measurement: the chip9 case through a 10-step
# single-unit-edit chain and a 3x3 (alpha, beta) weight grid, each
# instance solved cold (-no-delta) and delta-warm. The report is the
# BENCH_delta.json artifact quoted in EXPERIMENTS.md ("Incremental
# re-synthesis").
bench-delta:
	$(GO) run ./cmd/columbadelta -o BENCH_delta.json

verify: vet race fuzz-smoke conformance docs-check serve-check loadtest-smoke bench-delta-smoke bench-kernel milp-check

bench-solver:
	$(GO) test -run '^$$' -bench 'BenchmarkSolve(Sequential|Parallel)$$' -benchtime 3x -count=1 .

# Warm-started vs cold branch-and-bound on the reference cases; the
# source of the numbers quoted in EXPERIMENTS.md.
bench-warmstart:
	$(GO) test -run '^$$' -bench BenchmarkWarmstart -benchtime 3x -count=1 .

# Search-tree reductions (presolve + root cuts + pseudocost branching)
# on vs off on the reference cases; the source of the node/pivot/wall
# numbers quoted in EXPERIMENTS.md.
bench-cuts:
	$(GO) test -run '^$$' -bench BenchmarkCutsPresolve -benchtime 3x -count=1 .

# The LP-kernel gate: the steady-state warm path must stay at exactly
# 0 allocs/op (TestSolveFromSteadyStateAllocs fails otherwise), then the
# kernel benchmarks report ns/op and allocs/op for eyeballing.
bench-kernel:
	$(GO) test -run 'TestSolveFromSteadyStateAllocs' -count=1 ./internal/lp/
	$(GO) test -run '^$$' -bench 'BenchmarkSolveFrom' -benchmem -count=1 ./internal/lp/

# The dense-vs-sparse scaling curve (EXPERIMENTS.md "Kernel scaling"):
# one full synthesis per ChIP size and LP basis engine, chip9 → chip256
# plus a generated chip128-class netlist, reporting wall time, pivots,
# fill-in, peak basis nonzeros and dense fallbacks. The raw go test
# output is the BENCH artifact (BENCH_scaling.txt).
bench-scaling:
	$(GO) test -run '^$$' -bench BenchmarkScalingKernel -benchtime 1x -count=1 -timeout 60m . | tee BENCH_scaling.txt

bench:
	$(GO) test -bench . -benchmem .
